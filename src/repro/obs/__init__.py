"""First-class observability for the analysis service and engines.

Three dependency-free building blocks, wired through every layer of the
service (see ``docs/observability.md`` for the catalog):

* :mod:`repro.obs.metrics` — a metrics registry (counters, gauges,
  fixed-bucket latency histograms with p50/p95/p99 summaries) behind the
  ``{"op": "metrics"}`` protocol verb and the Prometheus text exposition
  of ``repro query --metrics --prom``;
* :mod:`repro.obs.trace` — per-request trace ids and span records,
  propagated over the NDJSON protocol as the optional ``"trace"``
  member and echoed in responses;
* :mod:`repro.obs.instrument` — the near-zero-cost per-phase timing
  handle threaded through ``analyze_term`` and both inference engines
  (parse / lower / execute / convert breakdowns);
* :mod:`repro.obs.logs` — the structured-logging bootstrap behind
  ``repro serve --log-level/--log-json`` (JSON lines to stderr,
  per-worker process names; no configuration side effects on import).
"""

from .instrument import NULL_INSTRUMENTATION, Instrumentation
from .logs import JsonLineFormatter, configure_logging
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    CounterGroup,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    render_prometheus,
)
from .trace import RequestTrace, new_trace_id

__all__ = [
    "Counter",
    "CounterGroup",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "JsonLineFormatter",
    "MetricsRegistry",
    "NULL_INSTRUMENTATION",
    "RequestTrace",
    "configure_logging",
    "global_registry",
    "new_trace_id",
    "render_prometheus",
]
