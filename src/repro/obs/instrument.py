"""Near-zero-cost per-phase timing for the inference engines.

An :class:`Instrumentation` handle accumulates named phase durations
(``parse`` / ``lower`` / ``execute`` / ``convert`` / ``interpret``) and
event counts (judgement-memo hits).  The engines take the handle as an
optional parameter defaulting to :data:`NULL_INSTRUMENTATION`, a shared
no-op whose ``enabled`` flag lets hot paths skip even the
``perf_counter`` calls::

    if instrumentation.enabled:
        started = time.perf_counter()
    ...
    if instrumentation.enabled:
        instrumentation.observe("execute", time.perf_counter() - started)

Phases are recorded at *stage boundaries only* — never per node or per
opcode — so the enabled handle costs a handful of clock reads per
analysis.  CI gates the measured overhead on the perf ladder families at
5% (``repro perf --overhead``).
"""

from __future__ import annotations

import time
from typing import Dict

__all__ = ["Instrumentation", "NULL_INSTRUMENTATION"]


class Instrumentation:
    """Accumulates phase durations (seconds) and event counts."""

    __slots__ = ("enabled", "phases", "counts")

    def __init__(self) -> None:
        self.enabled = True
        self.phases: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    def observe(self, phase: str, seconds: float) -> None:
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    def count(self, name: str, amount: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + amount

    def time(self, phase: str) -> "_PhaseTimer":
        """``with instrumentation.time("lower"): ...`` convenience."""
        return _PhaseTimer(self, phase)

    def breakdown(self) -> Dict[str, float]:
        """Phases plus counts in one flat dict (counts as plain numbers)."""
        merged: Dict[str, float] = dict(self.phases)
        merged.update(self.counts)
        return merged


class _PhaseTimer:
    __slots__ = ("_instrumentation", "_phase", "_started")

    def __init__(self, instrumentation: Instrumentation, phase: str) -> None:
        self._instrumentation = instrumentation
        self._phase = phase

    def __enter__(self) -> "_PhaseTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._instrumentation.observe(
            self._phase, time.perf_counter() - self._started
        )


class _NullInstrumentation(Instrumentation):
    """The disabled singleton: every record is a no-op."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__()
        self.enabled = False

    def observe(self, phase: str, seconds: float) -> None:
        pass

    def count(self, name: str, amount: int = 1) -> None:
        pass


#: Shared no-op handle; ``enabled`` is False so hot paths can skip the
#: clock reads entirely.
NULL_INSTRUMENTATION = _NullInstrumentation()
