"""Deterministic fault injection for the analysis service.

Chaos testing is only useful when a failing run can be replayed: this
package provides a *seeded* :class:`~repro.faults.plan.FaultPlan` whose
every injection decision is a pure function of ``(seed, site, event
counter)`` — no wall clock, no process-seeded randomness — so a chaos run
is reproducible bit-for-bit and a regression found under faults can be
re-triggered at will.

The plan is activated per process (workers activate from the pickled
:class:`~repro.service.server.ServiceConfig`, standalone servers from
``--faults`` or the ``REPRO_FAULTS`` environment variable) and consulted
at the injection *sites* threaded through the stack:

=================== =======================================================
site                where it fires
=================== =======================================================
``kill_worker``     :meth:`AnalysisService.handle` — hard ``os._exit``
                    mid-request, as if the process was SIGKILLed
``slow_response``   the server write path — delay the response frame
``truncate_frame``  the server write path — emit a partial frame and
                    drop the connection
``drop_connection`` the server write path — close without responding
``corrupt_cache``   :meth:`AnalysisCache._write_disk` — garbage the
                    just-written pickle so a later read must quarantine
``compiled_error``  :func:`repro.core.inference.infer` — the compiled
                    engine raises, exercising the interpreted fallback
=================== =======================================================

See ``docs/robustness.md`` for the plan grammar and the degradation
matrix each site is meant to exercise.
"""

from .plan import (
    FAULT_SITES,
    FaultPlan,
    InjectedFault,
    activate,
    active_plan,
    deactivate,
    injected_counts,
    plan_from_environment,
)

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "InjectedFault",
    "activate",
    "active_plan",
    "deactivate",
    "injected_counts",
    "plan_from_environment",
]
