"""Seedable fault plans: parse, decide, count.

A plan is written as a one-line spec so it travels through CLI flags,
environment variables and the pickled service config unchanged::

    seed=42;kill_worker=@40;slow_response=0.05:20;corrupt_cache=0.05

``seed=N`` fixes the decision stream; every other clause names an
injection *site* and how often it fires:

* ``site=P`` — probability per event, ``0 <= P <= 1``.  The n-th event at
  a site fires iff ``blake2b(seed:site:n) < P * 2**64`` — a deterministic
  Bernoulli stream, independent of time and process interleaving for a
  given per-site event order.
* ``site=@N1,N2,...`` — fire exactly on the listed event ordinals
  (1-based).  ``kill_worker=@40`` kills a worker when *its* 40th request
  arrives, every run.
* Either form takes an optional ``:ARG`` suffix — today only
  ``slow_response`` uses it, as the injected delay in milliseconds
  (default 25).

Sites keep independent event counters, so adding traffic at one site
never perturbs another site's schedule.  All mutation is lock-guarded:
plans are consulted from asyncio loops, executor threads and pool
workers alike.
"""

from __future__ import annotations

import hashlib
import os
import threading
from typing import Dict, FrozenSet, Optional, Tuple

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "InjectedFault",
    "activate",
    "active_plan",
    "deactivate",
    "injected_counts",
    "plan_from_environment",
]

#: Every site the stack consults; specs naming anything else are rejected
#: loudly (a typoed site that silently never fires is a chaos test that
#: proves nothing).
FAULT_SITES = (
    "kill_worker",
    "slow_response",
    "truncate_frame",
    "drop_connection",
    "corrupt_cache",
    "compiled_error",
)

_ENV_VAR = "REPRO_FAULTS"

_SCALE = float(1 << 64)


class InjectedFault(RuntimeError):
    """Raised by sites that inject by raising (``compiled_error``)."""


class _Site:
    """One site's schedule: a probability or an explicit ordinal set."""

    __slots__ = ("name", "rate", "ordinals", "arg")

    def __init__(
        self,
        name: str,
        rate: float = 0.0,
        ordinals: Optional[FrozenSet[int]] = None,
        arg: Optional[float] = None,
    ) -> None:
        self.name = name
        self.rate = rate
        self.ordinals = ordinals
        self.arg = arg

    def fires(self, seed: int, ordinal: int) -> bool:
        if self.ordinals is not None:
            return ordinal in self.ordinals
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        digest = hashlib.blake2b(
            f"{seed}:{self.name}:{ordinal}".encode("ascii"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") < self.rate * _SCALE

    def describe(self) -> Dict[str, object]:
        out: Dict[str, object] = {"site": self.name}
        if self.ordinals is not None:
            out["at"] = sorted(self.ordinals)
        else:
            out["rate"] = self.rate
        if self.arg is not None:
            out["arg"] = self.arg
        return out


class FaultPlan:
    """A parsed spec plus the per-site event counters it advances."""

    def __init__(self, seed: int, sites: Dict[str, _Site], spec: str) -> None:
        self.seed = seed
        self.spec = spec
        self._sites = sites
        self._events: Dict[str, int] = {name: 0 for name in sites}
        self._injected: Dict[str, int] = {name: 0 for name in sites}
        self._lock = threading.Lock()

    # -- construction --------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse ``seed=N;site=rate[:arg];...``; raises ``ValueError``."""
        seed = 0
        sites: Dict[str, _Site] = {}
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if "=" not in clause:
                raise ValueError(f"bad fault clause {clause!r} (expected name=value)")
            name, _, value = clause.partition("=")
            name = name.strip()
            value = value.strip()
            if name == "seed":
                seed = int(value)
                continue
            if name not in FAULT_SITES:
                raise ValueError(
                    f"unknown fault site {name!r}; expected one of {FAULT_SITES}"
                )
            arg: Optional[float] = None
            if ":" in value:
                value, _, arg_text = value.partition(":")
                arg = float(arg_text)
            if value.startswith("@"):
                ordinals = frozenset(
                    int(part) for part in value[1:].split(",") if part
                )
                if not ordinals or min(ordinals) < 1:
                    raise ValueError(f"bad ordinal list in {clause!r} (1-based)")
                sites[name] = _Site(name, ordinals=ordinals, arg=arg)
            else:
                rate = float(value)
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(f"rate out of range in {clause!r}")
                sites[name] = _Site(name, rate=rate, arg=arg)
        return cls(seed, sites, spec)

    # -- decisions -----------------------------------------------------------

    def should(self, site: str) -> bool:
        """Advance ``site``'s event counter; ``True`` when the fault fires."""
        entry = self._sites.get(site)
        if entry is None:
            return False
        with self._lock:
            self._events[site] += 1
            ordinal = self._events[site]
            fired = entry.fires(self.seed, ordinal)
            if fired:
                self._injected[site] += 1
        return fired

    def arg(self, site: str, default: float) -> float:
        entry = self._sites.get(site)
        if entry is None or entry.arg is None:
            return default
        return entry.arg

    # -- reporting -----------------------------------------------------------

    def injected(self, site: str) -> int:
        with self._lock:
            return self._injected.get(site, 0)

    def counts(self) -> Dict[str, Tuple[int, int]]:
        """``{site: (events_seen, faults_injected)}`` snapshot."""
        with self._lock:
            return {
                name: (self._events[name], self._injected[name])
                for name in self._sites
            }

    def describe(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "sites": [site.describe() for site in self._sites.values()],
            "injected": {name: hits for name, (_seen, hits) in self.counts().items()},
        }


# ---------------------------------------------------------------------------
# Process-wide activation
# ---------------------------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None


def activate(spec: Optional[str]) -> Optional[FaultPlan]:
    """Install the process-wide plan (``None``/empty deactivates)."""
    global _ACTIVE
    if not spec:
        _ACTIVE = None
        return None
    _ACTIVE = FaultPlan.from_spec(spec)
    return _ACTIVE


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


def plan_from_environment() -> Optional[str]:
    """The ``REPRO_FAULTS`` spec, if set (workers inherit it on spawn)."""
    return os.environ.get(_ENV_VAR) or None


def injected_counts() -> Dict[str, int]:
    """Injected-fault counters of the active plan (empty when inactive)."""
    plan = _ACTIVE
    if plan is None:
        return {}
    return {name: hits for name, (_seen, hits) in plan.counts().items()}
