"""Extended pseudo-metric spaces (Definition 4.1).

An extended pseudo-metric space is a carrier set together with a distance
``d : A × A → [0, ∞]`` satisfying reflexivity (``d(a, a) = 0``), symmetry and
the triangle inequality.  Distances may be infinite, and distinct points may
be at distance zero.

Because the relative-precision metric involves a logarithm, exact distances
are generally irrational.  Every metric therefore exposes two views:

* :meth:`Metric.distance` — a ``float`` approximation, convenient for quick
  inspection and plots;
* :meth:`Metric.distance_enclosure` — a pair of :class:`~fractions.Fraction`
  bounds ``(lo, hi)`` with ``lo ≤ d(a, b) ≤ hi``, used whenever a *sound*
  comparison against a type-level grade is required.

The special value :data:`INFINITE_DISTANCE` stands for ``∞`` in enclosures.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Tuple

__all__ = ["Metric", "MetricSpace", "INFINITE_DISTANCE", "Enclosure", "is_infinite"]

#: Sentinel used inside enclosures for an infinite distance.
INFINITE_DISTANCE = float("inf")

#: A rational enclosure of a distance; either endpoint may be ``inf``.
Enclosure = Tuple[object, object]


def is_infinite(bound: object) -> bool:
    return isinstance(bound, float) and bound == INFINITE_DISTANCE


class Metric:
    """A distance function over some carrier of Python values."""

    def contains(self, point: Any) -> bool:
        """Membership test for the carrier set."""
        raise NotImplementedError

    def distance_enclosure(self, a: Any, b: Any) -> Enclosure:
        """A rigorous enclosure ``(lo, hi)`` of ``d(a, b)``."""
        raise NotImplementedError

    def distance(self, a: Any, b: Any) -> float:
        low, high = self.distance_enclosure(a, b)
        if is_infinite(high):
            return INFINITE_DISTANCE
        return float(Fraction(low) + Fraction(high)) / 2 if low != high else float(high)

    # -- helpers used by tests and by the soundness checker -----------------

    def within(self, a: Any, b: Any, bound: Fraction) -> bool:
        """Soundly decide ``d(a, b) ≤ bound`` (using the upper enclosure)."""
        _, high = self.distance_enclosure(a, b)
        if is_infinite(high):
            return False
        return Fraction(high) <= Fraction(bound)

    def exceeds(self, a: Any, b: Any, bound: Fraction) -> bool:
        """Soundly decide ``d(a, b) > bound`` (using the lower enclosure)."""
        low, _ = self.distance_enclosure(a, b)
        if is_infinite(low):
            return True
        return Fraction(low) > Fraction(bound)


#: Alias kept for readability: a metric space is represented by its metric,
#: whose :meth:`Metric.contains` method describes the carrier.
MetricSpace = Metric


def add_bounds(a: object, b: object) -> object:
    """Addition on ``[0, ∞]`` endpoints."""
    if is_infinite(a) or is_infinite(b):
        return INFINITE_DISTANCE
    return Fraction(a) + Fraction(b)


def max_bounds(a: object, b: object) -> object:
    if is_infinite(a) or is_infinite(b):
        return INFINITE_DISTANCE
    return max(Fraction(a), Fraction(b))


def scale_bound(factor: Fraction, bound: object) -> object:
    """Scalar multiplication on ``[0, ∞]`` with the convention ``0 * ∞ = 0``."""
    if is_infinite(bound):
        return Fraction(0) if factor == 0 else INFINITE_DISTANCE
    return Fraction(factor) * Fraction(bound)
