"""Interpretation of Λnum types as metric spaces (Definition 4.8).

``space_of_type`` maps every Λnum type to the metric space that interprets it
in **Met**, parameterised by the numeric metric chosen for ``num`` (the RP
metric by default).  Function types need probe points to approximate the sup
metric; callers that only need first-order types can ignore that parameter.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core import types as T
from .base import Metric
from .numeric import RP_METRIC
from .spaces import (
    CoproductSpace,
    FunctionSpace,
    NeighborhoodSpace,
    ProductSpace,
    ScaledSpace,
    SingletonSpace,
    TensorSpace,
)

__all__ = ["space_of_type"]


def space_of_type(
    tau: T.Type,
    numeric_metric: Metric = RP_METRIC,
    probes: Sequence[Any] = (),
) -> Metric:
    """The metric space ``⟦τ⟧`` interpreting the type ``τ``."""
    if isinstance(tau, T.Unit):
        return SingletonSpace()
    if isinstance(tau, T.Num):
        return numeric_metric
    if isinstance(tau, T.WithProduct):
        return ProductSpace(
            space_of_type(tau.left, numeric_metric, probes),
            space_of_type(tau.right, numeric_metric, probes),
        )
    if isinstance(tau, T.TensorProduct):
        return TensorSpace(
            space_of_type(tau.left, numeric_metric, probes),
            space_of_type(tau.right, numeric_metric, probes),
        )
    if isinstance(tau, T.SumType):
        return CoproductSpace(
            space_of_type(tau.left, numeric_metric, probes),
            space_of_type(tau.right, numeric_metric, probes),
        )
    if isinstance(tau, T.Arrow):
        return FunctionSpace(
            space_of_type(tau.argument, numeric_metric, probes),
            space_of_type(tau.result, numeric_metric, probes),
            probes,
        )
    if isinstance(tau, T.Bang):
        return ScaledSpace(tau.sensitivity, space_of_type(tau.inner, numeric_metric, probes))
    if isinstance(tau, T.Monadic):
        return NeighborhoodSpace(tau.grade, space_of_type(tau.inner, numeric_metric, probes))
    raise TypeError(f"unknown type {tau!r}")
