"""Constructions on metric spaces used to interpret Λnum types (Section 4.1).

The category **Met** of extended pseudo-metric spaces and non-expansive maps
supports the following constructions, all mirrored here:

* :class:`SingletonSpace` — the unit object ``I``;
* :class:`ProductSpace` — the Cartesian product ``×`` with the *max* metric;
* :class:`TensorSpace` — the tensor product ``⊗`` with the *sum* metric;
* :class:`CoproductSpace` — the coproduct ``+`` (different injections are at
  infinite distance);
* :class:`ScaledSpace` — the graded comonad ``D_s`` scaling the metric by ``s``
  (Definition 4.2);
* :class:`NeighborhoodSpace` — the graded monad ``T_r`` whose points are pairs
  ``(ideal, approx)`` at distance ≤ r, with distances measured on the first
  component (Definition 4.3);
* :class:`FunctionSpace` — the internal hom ``⊸`` with the sup metric,
  approximated over a finite set of probe points (sufficient for the law and
  non-expansiveness tests).

Values in product/tensor spaces are Python pairs ``(a, b)``; coproduct values
are tagged pairs ``("inl", a)`` / ``("inr", b)``; neighborhood values are
pairs ``(ideal, approx)``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Callable, Iterable, Sequence, Tuple

from ..core.grades import Grade, GradeLike, as_grade
from .base import (
    Enclosure,
    INFINITE_DISTANCE,
    Metric,
    add_bounds,
    is_infinite,
    max_bounds,
    scale_bound,
)

__all__ = [
    "SingletonSpace",
    "ProductSpace",
    "TensorSpace",
    "CoproductSpace",
    "ScaledSpace",
    "NeighborhoodSpace",
    "FunctionSpace",
    "is_non_expansive",
    "sensitivity_estimate",
]


class SingletonSpace(Metric):
    """The one-point space ``I = ({*}, 0)``."""

    POINT = "*"

    def contains(self, point: Any) -> bool:
        return point == self.POINT or point is None

    def distance_enclosure(self, a: Any, b: Any) -> Enclosure:
        return (Fraction(0), Fraction(0))


class ProductSpace(Metric):
    """Cartesian product with the max metric (interprets ``×``)."""

    def __init__(self, left: Metric, right: Metric) -> None:
        self.left = left
        self.right = right

    def contains(self, point: Any) -> bool:
        return (
            isinstance(point, tuple)
            and len(point) == 2
            and self.left.contains(point[0])
            and self.right.contains(point[1])
        )

    def distance_enclosure(self, a: Any, b: Any) -> Enclosure:
        left_lo, left_hi = self.left.distance_enclosure(a[0], b[0])
        right_lo, right_hi = self.right.distance_enclosure(a[1], b[1])
        return (max_bounds(left_lo, right_lo), max_bounds(left_hi, right_hi))


class TensorSpace(Metric):
    """Tensor product with the sum metric (interprets ``⊗``)."""

    def __init__(self, left: Metric, right: Metric) -> None:
        self.left = left
        self.right = right

    def contains(self, point: Any) -> bool:
        return (
            isinstance(point, tuple)
            and len(point) == 2
            and self.left.contains(point[0])
            and self.right.contains(point[1])
        )

    def distance_enclosure(self, a: Any, b: Any) -> Enclosure:
        left_lo, left_hi = self.left.distance_enclosure(a[0], b[0])
        right_lo, right_hi = self.right.distance_enclosure(a[1], b[1])
        return (add_bounds(left_lo, right_lo), add_bounds(left_hi, right_hi))


class CoproductSpace(Metric):
    """Coproduct: elements of different injections are infinitely far apart."""

    def __init__(self, left: Metric, right: Metric) -> None:
        self.left = left
        self.right = right

    def contains(self, point: Any) -> bool:
        if not (isinstance(point, tuple) and len(point) == 2):
            return False
        tag, value = point
        if tag == "inl":
            return self.left.contains(value)
        if tag == "inr":
            return self.right.contains(value)
        return False

    def distance_enclosure(self, a: Any, b: Any) -> Enclosure:
        tag_a, value_a = a
        tag_b, value_b = b
        if tag_a != tag_b:
            return (INFINITE_DISTANCE, INFINITE_DISTANCE)
        side = self.left if tag_a == "inl" else self.right
        return side.distance_enclosure(value_a, value_b)


class ScaledSpace(Metric):
    """The graded comonad ``D_s``: same carrier, metric scaled by ``s``."""

    def __init__(self, scale: GradeLike, inner: Metric) -> None:
        self.scale: Grade = as_grade(scale)
        self.inner = inner

    def contains(self, point: Any) -> bool:
        return self.inner.contains(point)

    def distance_enclosure(self, a: Any, b: Any) -> Enclosure:
        lo, hi = self.inner.distance_enclosure(a, b)
        if self.scale.is_infinite:
            zero = Fraction(0)
            lo_scaled = zero if (not is_infinite(lo) and Fraction(lo) == 0) else INFINITE_DISTANCE
            hi_scaled = zero if (not is_infinite(hi) and Fraction(hi) == 0) else INFINITE_DISTANCE
            return (lo_scaled, hi_scaled)
        factor = self.scale.evaluate()
        return (scale_bound(factor, lo), scale_bound(factor, hi))


class NeighborhoodSpace(Metric):
    """The graded monad ``T_r``: pairs (ideal, approx) at distance ≤ r.

    The metric compares only the *ideal* components (Definition 4.3).
    """

    def __init__(self, grade: GradeLike, inner: Metric) -> None:
        self.grade: Grade = as_grade(grade)
        self.inner = inner

    def contains(self, point: Any) -> bool:
        if not (isinstance(point, tuple) and len(point) == 2):
            return False
        ideal, approx = point
        if not (self.inner.contains(ideal) and self.inner.contains(approx)):
            return False
        if self.grade.is_infinite:
            return True
        _, high = self.inner.distance_enclosure(ideal, approx)
        if is_infinite(high):
            return False
        return Fraction(high) <= self.grade.evaluate()

    def distance_enclosure(self, a: Any, b: Any) -> Enclosure:
        return self.inner.distance_enclosure(a[0], b[0])


class FunctionSpace(Metric):
    """The internal hom ``A ⊸ B`` with the sup metric over probe points.

    The true sup metric ranges over the whole carrier of ``A``; for testing
    purposes we evaluate the sup over a finite, user-supplied family of probe
    points, which under-approximates the distance (and therefore never makes
    the triangle-inequality tests spuriously fail).
    """

    def __init__(self, domain: Metric, codomain: Metric, probes: Sequence[Any]) -> None:
        self.domain = domain
        self.codomain = codomain
        self.probes = list(probes)

    def contains(self, point: Any) -> bool:
        return callable(point)

    def distance_enclosure(self, f: Callable, g: Callable) -> Enclosure:
        lo_acc: object = Fraction(0)
        hi_acc: object = Fraction(0)
        for probe in self.probes:
            lo, hi = self.codomain.distance_enclosure(f(probe), g(probe))
            lo_acc = max_bounds(lo_acc, lo)
            hi_acc = max_bounds(hi_acc, hi)
        return (lo_acc, hi_acc)


# ---------------------------------------------------------------------------
# Non-expansiveness / sensitivity probing
# ---------------------------------------------------------------------------


def is_non_expansive(
    func: Callable[[Any], Any],
    domain: Metric,
    codomain: Metric,
    pairs: Iterable[Tuple[Any, Any]],
) -> bool:
    """Check ``d(f a, f b) ≤ d(a, b)`` on the supplied pairs (soundly).

    Uses the upper enclosure of the output distance against the lower
    enclosure of the input distance, so a ``True`` answer can only be wrong in
    the conservative direction on the probed pairs.
    """
    for a, b in pairs:
        in_lo, _ = domain.distance_enclosure(a, b)
        _, out_hi = codomain.distance_enclosure(func(a), func(b))
        if is_infinite(in_lo):
            continue
        if is_infinite(out_hi):
            return False
        if Fraction(out_hi) > Fraction(in_lo):
            return False
    return True


def sensitivity_estimate(
    func: Callable[[Any], Any],
    domain: Metric,
    codomain: Metric,
    pairs: Iterable[Tuple[Any, Any]],
) -> float:
    """The largest observed ratio ``d(f a, f b) / d(a, b)`` over the pairs."""
    worst = 0.0
    for a, b in pairs:
        in_dist = domain.distance(a, b)
        out_dist = codomain.distance(func(a), func(b))
        if in_dist == 0:
            continue
        if is_infinite(in_dist):
            continue
        ratio = out_dist / in_dist if in_dist else INFINITE_DISTANCE
        worst = max(worst, ratio)
    return worst
