"""Extended pseudo-metric spaces and the constructions interpreting Λnum types."""

from .base import Enclosure, INFINITE_DISTANCE, Metric, MetricSpace, is_infinite
from .numeric import (
    ABS_METRIC,
    AbsoluteErrorMetric,
    DiscreteMetric,
    RelativeErrorDistance,
    RelativePrecisionMetric,
    RP_METRIC,
    UlpDistance,
)
from .spaces import (
    CoproductSpace,
    FunctionSpace,
    NeighborhoodSpace,
    ProductSpace,
    ScaledSpace,
    SingletonSpace,
    TensorSpace,
    is_non_expansive,
    sensitivity_estimate,
)
from .interpretation import space_of_type

__all__ = [
    "Enclosure",
    "INFINITE_DISTANCE",
    "Metric",
    "MetricSpace",
    "is_infinite",
    "RelativePrecisionMetric",
    "AbsoluteErrorMetric",
    "RelativeErrorDistance",
    "UlpDistance",
    "DiscreteMetric",
    "RP_METRIC",
    "ABS_METRIC",
    "SingletonSpace",
    "ProductSpace",
    "TensorSpace",
    "CoproductSpace",
    "ScaledSpace",
    "NeighborhoodSpace",
    "FunctionSpace",
    "is_non_expansive",
    "sensitivity_estimate",
    "space_of_type",
]
