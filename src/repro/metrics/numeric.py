"""Numeric metrics used to instantiate the ``num`` type.

The paper's leading instantiation interprets ``num`` as the strictly positive
reals with Olver's relative-precision metric ``RP(x, y) = |ln(x / y)|``
(Definition 2.2).  We also provide the absolute-error metric, the
relative-error "distance" and a ULP-based distance so the framework can be
instantiated with other error measures (Section 2.1 and Section 8 discuss
these alternatives; note that relative error and ULP error are *not* true
metrics — the property tests demonstrate exactly which axioms fail).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any

from ..floats.exactmath import rp_distance_enclosure
from ..floats.formats import BINARY64, FloatFormat
from ..floats.ulp import ulp_error
from .base import Enclosure, INFINITE_DISTANCE, Metric

__all__ = [
    "RelativePrecisionMetric",
    "AbsoluteErrorMetric",
    "RelativeErrorDistance",
    "UlpDistance",
    "DiscreteMetric",
    "RP_METRIC",
    "ABS_METRIC",
]


def _as_fraction(value: Any) -> Fraction:
    return value if isinstance(value, Fraction) else Fraction(value)


class RelativePrecisionMetric(Metric):
    """Olver's relative-precision metric on the strictly positive reals."""

    def contains(self, point: Any) -> bool:
        try:
            return _as_fraction(point) > 0
        except (TypeError, ValueError):
            return False

    def distance_enclosure(self, a: Any, b: Any) -> Enclosure:
        a, b = _as_fraction(a), _as_fraction(b)
        if a <= 0 or b <= 0:
            return (INFINITE_DISTANCE, INFINITE_DISTANCE)
        if a == b:
            return (Fraction(0), Fraction(0))
        return rp_distance_enclosure(a, b)


class AbsoluteErrorMetric(Metric):
    """The absolute-error metric ``|x - y|`` on all reals (Equation (3))."""

    def contains(self, point: Any) -> bool:
        try:
            _as_fraction(point)
            return True
        except (TypeError, ValueError):
            return False

    def distance_enclosure(self, a: Any, b: Any) -> Enclosure:
        value = abs(_as_fraction(a) - _as_fraction(b))
        return (value, value)


class RelativeErrorDistance(Metric):
    """The relative error ``|x - y| / |x|`` (Equation (3)).

    This is *not* a metric (it is asymmetric and fails the triangle
    inequality); it is provided for comparison and for converting bounds.
    The first argument is treated as the reference (exact) value.
    """

    def contains(self, point: Any) -> bool:
        try:
            return _as_fraction(point) != 0
        except (TypeError, ValueError):
            return False

    def distance_enclosure(self, a: Any, b: Any) -> Enclosure:
        a, b = _as_fraction(a), _as_fraction(b)
        if a == 0:
            return (INFINITE_DISTANCE, INFINITE_DISTANCE)
        value = abs(b - a) / abs(a)
        return (value, value)


class UlpDistance(Metric):
    """ULP error with respect to a floating-point format (Equation (4)).

    Like relative error this is not a true metric, but it induces a useful
    distance for comparing against accuracy-optimisation tools.
    """

    def __init__(self, fmt: FloatFormat = BINARY64) -> None:
        self.fmt = fmt

    def contains(self, point: Any) -> bool:
        try:
            _as_fraction(point)
            return True
        except (TypeError, ValueError):
            return False

    def distance_enclosure(self, a: Any, b: Any) -> Enclosure:
        value = ulp_error(_as_fraction(a), _as_fraction(b), self.fmt)
        return (value, value)


class DiscreteMetric(Metric):
    """The 0/∞ metric: distance zero iff the points are equal.

    This is the metric on the unit type and on each summand's tag in the
    coproduct construction.
    """

    def contains(self, point: Any) -> bool:
        return True

    def distance_enclosure(self, a: Any, b: Any) -> Enclosure:
        if a == b:
            return (Fraction(0), Fraction(0))
        return (INFINITE_DISTANCE, INFINITE_DISTANCE)


RP_METRIC = RelativePrecisionMetric()
ABS_METRIC = AbsoluteErrorMetric()
