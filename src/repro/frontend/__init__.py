"""Expression-level frontend: the FPCore-style IR and its Λnum compiler."""

from . import expr
from .compiler import CompileError, CompiledProgram, compile_expression
from .expr import (
    Add,
    Comparison,
    Cond,
    Const,
    Div,
    Fma,
    Mul,
    RealExpr,
    Sqrt,
    Sub,
    Var,
    arithmetic_operation_count,
    evaluate_exact,
    evaluate_fp,
    free_variables,
    operation_count,
)
from .fpcore import FPCore, parse_fpcore, parse_sexpr

__all__ = [
    "expr",
    "CompileError",
    "CompiledProgram",
    "compile_expression",
    "RealExpr",
    "Var",
    "Const",
    "Add",
    "Sub",
    "Mul",
    "Div",
    "Sqrt",
    "Fma",
    "Cond",
    "Comparison",
    "evaluate_exact",
    "evaluate_fp",
    "free_variables",
    "operation_count",
    "arithmetic_operation_count",
    "FPCore",
    "parse_fpcore",
    "parse_sexpr",
]
