"""A small FPCore (FPBench interchange format) frontend.

FPBench benchmarks are written as s-expressions::

    (FPCore (x y)
      :name "hypot"
      :pre (and (<= 0.1 x) (<= x 1000))
      (sqrt (+ (* x x) (* y y))))

This module parses the subset of FPCore needed for the paper's benchmarks —
the arithmetic operators ``+ - * / sqrt fma``, ``if`` with comparison guards,
``let``/``let*`` bindings (inlined by substitution) and numeric/variable
atoms — into the :mod:`repro.frontend.expr` IR.  Properties (``:name``,
``:pre`` …) are collected into a dictionary; ``:pre`` conjunctions of simple
range constraints are additionally converted into input boxes usable by the
baseline analysers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from ..core.errors import ParseError
from . import expr as E

__all__ = ["FPCore", "parse_fpcore", "parse_sexpr"]

Atom = Union[str, Fraction]
SExpr = Union[Atom, list]


@dataclass
class FPCore:
    """A parsed FPCore benchmark."""

    arguments: List[str]
    expression: E.RealExpr
    properties: Dict[str, object] = field(default_factory=dict)
    input_ranges: Dict[str, Tuple[Fraction, Fraction]] = field(default_factory=dict)

    @property
    def name(self) -> Optional[str]:
        value = self.properties.get("name")
        return str(value) if value is not None else None


# ---------------------------------------------------------------------------
# S-expression reader
# ---------------------------------------------------------------------------


def _tokenize_sexpr(text: str) -> List[str]:
    tokens: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == ";":
            end = text.find("\n", i)
            i = len(text) if end == -1 else end
            continue
        if ch in "()":
            tokens.append(ch)
            i += 1
            continue
        if ch == '"':
            end = text.find('"', i + 1)
            if end == -1:
                raise ParseError("unterminated string literal in FPCore source")
            tokens.append(text[i : end + 1])
            i = end + 1
            continue
        j = i
        while j < len(text) and not text[j].isspace() and text[j] not in '();"':
            j += 1
        tokens.append(text[i:j])
        i = j
    return tokens


def parse_sexpr(text: str) -> SExpr:
    """Parse a single s-expression."""
    tokens = _tokenize_sexpr(text)
    expr, rest = _read_sexpr(tokens, 0)
    if rest != len(tokens):
        raise ParseError("trailing tokens after the first s-expression")
    return expr


def _read_sexpr(tokens: List[str], position: int) -> Tuple[SExpr, int]:
    if position >= len(tokens):
        raise ParseError("unexpected end of FPCore input")
    token = tokens[position]
    if token == "(":
        items: List[SExpr] = []
        position += 1
        while position < len(tokens) and tokens[position] != ")":
            item, position = _read_sexpr(tokens, position)
            items.append(item)
        if position >= len(tokens):
            raise ParseError("missing closing parenthesis in FPCore input")
        return items, position + 1
    if token == ")":
        raise ParseError("unexpected ')' in FPCore input")
    return _atom(token), position + 1


def _atom(token: str) -> Atom:
    if token.startswith('"') and token.endswith('"'):
        return token[1:-1]
    try:
        return Fraction(token)
    except (ValueError, ZeroDivisionError):
        return token


# ---------------------------------------------------------------------------
# FPCore -> RealExpr
# ---------------------------------------------------------------------------

_BINARY_OPS = {"+": E.Add, "-": E.Sub, "*": E.Mul, "/": E.Div}
_COMPARISONS = {"<", ">", "<=", ">="}


def parse_fpcore(source: str) -> FPCore:
    """Parse an FPCore benchmark into the expression IR."""
    form = parse_sexpr(source)
    if not (isinstance(form, list) and form and form[0] == "FPCore"):
        raise ParseError("not an FPCore form")
    rest = form[1:]
    # Optional symbolic name before the argument list.
    if rest and isinstance(rest[0], str):
        rest = rest[1:]
    if not rest or not isinstance(rest[0], list):
        raise ParseError("FPCore form is missing its argument list")
    arguments = [str(arg) for arg in rest[0]]
    rest = rest[1:]

    properties: Dict[str, object] = {}
    while len(rest) >= 2 and isinstance(rest[0], str) and rest[0].startswith(":"):
        properties[rest[0][1:]] = rest[1]
        rest = rest[2:]
    if len(rest) != 1:
        raise ParseError("FPCore form must end with exactly one body expression")

    expression = _convert(rest[0], {})
    ranges = _ranges_from_precondition(properties.get("pre"), arguments)
    return FPCore(arguments, expression, properties, ranges)


def _convert(form: SExpr, bindings: Dict[str, E.RealExpr]) -> E.RealExpr:
    if isinstance(form, Fraction):
        return E.Const(form)
    if isinstance(form, str):
        if form in bindings:
            return bindings[form]
        return E.Var(form)
    if not form:
        raise ParseError("empty s-expression in FPCore body")
    head = form[0]
    args = form[1:]
    if head in _BINARY_OPS:
        if len(args) == 1:
            if head == "-":
                raise ParseError("unary negation is not supported by the RP instantiation")
            return _convert(args[0], bindings)
        expr = _convert(args[0], bindings)
        for arg in args[1:]:
            expr = _BINARY_OPS[head](expr, _convert(arg, bindings))
        return expr
    if head == "sqrt":
        return E.Sqrt(_convert(args[0], bindings))
    if head == "fma":
        return E.Fma(*(_convert(arg, bindings) for arg in args))
    if head == "if":
        guard_form, then_form, else_form = args
        guard = _convert_guard(guard_form, bindings)
        return E.Cond(guard, _convert(then_form, bindings), _convert(else_form, bindings))
    if head in ("let", "let*"):
        binding_forms, body = args
        new_bindings = dict(bindings)
        for binding in binding_forms:
            name, value = binding
            scope = new_bindings if head == "let*" else bindings
            new_bindings[str(name)] = _convert(value, scope)
        return _convert(body, new_bindings)
    raise ParseError(f"unsupported FPCore operator {head!r}")


def _convert_guard(form: SExpr, bindings: Dict[str, E.RealExpr]) -> E.Comparison:
    if not (isinstance(form, list) and len(form) == 3 and form[0] in _COMPARISONS):
        raise ParseError("only simple comparison guards are supported")
    return E.Comparison(
        str(form[0]), _convert(form[1], bindings), _convert(form[2], bindings)
    )


def _ranges_from_precondition(
    precondition: object, arguments: List[str]
) -> Dict[str, Tuple[Fraction, Fraction]]:
    """Extract per-variable boxes from a conjunction of simple range constraints."""
    ranges: Dict[str, List[Optional[Fraction]]] = {name: [None, None] for name in arguments}

    def visit(form: object) -> None:
        if not isinstance(form, list) or not form:
            return
        head = form[0]
        if head == "and":
            for sub in form[1:]:
                visit(sub)
            return
        if head in ("<=", "<") and len(form) == 3:
            low, high = form[1], form[2]
            if isinstance(low, Fraction) and isinstance(high, str) and high in ranges:
                ranges[high][0] = low
            if isinstance(low, str) and low in ranges and isinstance(high, Fraction):
                ranges[low][1] = high
            return
        if head in (">=", ">") and len(form) == 3:
            visit(["<=" if head == ">=" else "<", form[2], form[1]])

    visit(precondition)
    result: Dict[str, Tuple[Fraction, Fraction]] = {}
    for name, (low, high) in ranges.items():
        if low is not None and high is not None:
            result[name] = (low, high)
    return result
