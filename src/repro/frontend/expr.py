"""A straight-line real-expression IR (FPCore-style) shared by the benchmark
suite, the Λnum compiler and the baseline analysers.

The IR describes the *ideal* real-valued computation; the different backends
attach rounding in their own way:

* :func:`repro.frontend.compiler.compile_expression` translates an expression
  into a Λnum term with one ``rnd`` per arithmetic operation;
* :mod:`repro.baselines.gappa_like` and :mod:`repro.baselines.fptaylor_like`
  analyse the expression directly with per-operation ``(1+δ)`` factors.

Expressions support exact rational evaluation, evaluation under the standard
floating-point model, symbolic differentiation (needed for the Taylor-form
baseline) and basic structural utilities.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, Iterator, Mapping, Sequence, Tuple, Union

from ..floats.exactmath import sqrt_round
from ..floats.standard_model import StandardModel

# Benchmark expressions (serial sums, high-degree polynomials) are deep,
# strictly right- or left-leaning trees; recursive traversals need headroom.
if sys.getrecursionlimit() < 20_000:
    sys.setrecursionlimit(20_000)

__all__ = [
    "RealExpr",
    "Var",
    "Const",
    "Add",
    "Sub",
    "Mul",
    "Div",
    "Sqrt",
    "Fma",
    "Comparison",
    "Cond",
    "var",
    "const",
    "add",
    "sub",
    "mul",
    "div",
    "sqrt",
    "fma",
    "evaluate_exact",
    "evaluate_fp",
    "free_variables",
    "operation_count",
    "arithmetic_operation_count",
    "differentiate",
    "subexpressions",
]

Number = Union[int, float, Fraction, str]

#: Precision used for exact sqrt evaluation of the ideal expression semantics.
_EXACT_SQRT_PRECISION = 300


class RealExpr:
    """Base class of real-valued expressions."""

    __slots__ = ()

    # Operator sugar so benchmark definitions read naturally.
    def __add__(self, other: "RealExpr") -> "RealExpr":
        return Add(self, _coerce(other))

    def __radd__(self, other: Number) -> "RealExpr":
        return Add(_coerce(other), self)

    def __sub__(self, other: "RealExpr") -> "RealExpr":
        return Sub(self, _coerce(other))

    def __rsub__(self, other: Number) -> "RealExpr":
        return Sub(_coerce(other), self)

    def __mul__(self, other: "RealExpr") -> "RealExpr":
        return Mul(self, _coerce(other))

    def __rmul__(self, other: Number) -> "RealExpr":
        return Mul(_coerce(other), self)

    def __truediv__(self, other: "RealExpr") -> "RealExpr":
        return Div(self, _coerce(other))

    def __rtruediv__(self, other: Number) -> "RealExpr":
        return Div(_coerce(other), self)

    def children(self) -> Tuple["RealExpr", ...]:
        return ()

    def __str__(self) -> str:
        return to_string(self)


def _coerce(value: Union[Number, RealExpr]) -> RealExpr:
    if isinstance(value, RealExpr):
        return value
    return Const(Fraction(value))


@dataclass(frozen=True)
class Var(RealExpr):
    name: str


@dataclass(frozen=True)
class Const(RealExpr):
    value: Fraction

    def __post_init__(self):
        object.__setattr__(self, "value", Fraction(self.value))


@dataclass(frozen=True)
class Add(RealExpr):
    left: RealExpr
    right: RealExpr

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class Sub(RealExpr):
    left: RealExpr
    right: RealExpr

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class Mul(RealExpr):
    left: RealExpr
    right: RealExpr

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class Div(RealExpr):
    left: RealExpr
    right: RealExpr

    def children(self):
        return (self.left, self.right)


@dataclass(frozen=True)
class Sqrt(RealExpr):
    operand: RealExpr

    def children(self):
        return (self.operand,)


@dataclass(frozen=True)
class Fma(RealExpr):
    """A fused multiply-add ``a*b + c`` evaluated with a single rounding."""

    a: RealExpr
    b: RealExpr
    c: RealExpr

    def children(self):
        return (self.a, self.b, self.c)


@dataclass(frozen=True)
class Comparison:
    """A boolean guard ``left <op> right`` with ``op`` in {'<', '>', '<=', '>='}."""

    op: str
    left: RealExpr
    right: RealExpr


@dataclass(frozen=True)
class Cond(RealExpr):
    """A conditional expression ``if guard then then_branch else else_branch``."""

    guard: Comparison
    then_branch: RealExpr
    else_branch: RealExpr

    def children(self):
        return (self.guard.left, self.guard.right, self.then_branch, self.else_branch)


# -- construction helpers ----------------------------------------------------


def var(name: str) -> Var:
    return Var(name)


def const(value: Number) -> Const:
    return Const(Fraction(value))


def add(left, right) -> Add:
    return Add(_coerce(left), _coerce(right))


def sub(left, right) -> Sub:
    return Sub(_coerce(left), _coerce(right))


def mul(left, right) -> Mul:
    return Mul(_coerce(left), _coerce(right))


def div(left, right) -> Div:
    return Div(_coerce(left), _coerce(right))


def sqrt(operand) -> Sqrt:
    return Sqrt(_coerce(operand))


def fma(a, b, c) -> Fma:
    return Fma(_coerce(a), _coerce(b), _coerce(c))


# -- structural utilities ------------------------------------------------------


def subexpressions(expr: RealExpr) -> Iterator[RealExpr]:
    """Post-order traversal of all subexpressions."""
    for child in expr.children():
        yield from subexpressions(child)
    yield expr


def free_variables(expr: RealExpr) -> Tuple[str, ...]:
    names = []
    seen = set()
    for node in subexpressions(expr):
        if isinstance(node, Var) and node.name not in seen:
            seen.add(node.name)
            names.append(node.name)
    return tuple(names)


def operation_count(expr: RealExpr) -> int:
    """Number of rounded floating-point operations in the compiled program.

    A fused multiply-add counts as a single *rounded* operation; see
    :func:`arithmetic_operation_count` for the paper's "Ops" convention.
    """
    count = 0
    for node in subexpressions(expr):
        if isinstance(node, (Add, Sub, Mul, Div, Sqrt, Fma)):
            count += 1
        elif isinstance(node, Cond):
            # Conditionals do not round; their branches were already counted.
            pass
    return count


def arithmetic_operation_count(expr: RealExpr) -> int:
    """Number of arithmetic operations, counting an FMA as a multiply plus an
    add — the convention used by the paper's "Ops" columns (Tables 3 and 4)."""
    count = 0
    for node in subexpressions(expr):
        if isinstance(node, (Add, Sub, Mul, Div, Sqrt)):
            count += 1
        elif isinstance(node, Fma):
            count += 2
    return count


# -- evaluation ----------------------------------------------------------------


def _compare(op: str, left: Fraction, right: Fraction) -> bool:
    if op == "<":
        return left < right
    if op == ">":
        return left > right
    if op == "<=":
        return left <= right
    if op == ">=":
        return left >= right
    raise ValueError(f"unknown comparison operator {op!r}")


def evaluate_exact(expr: RealExpr, inputs: Mapping[str, Number]) -> Fraction:
    """Evaluate the ideal (infinitely precise) semantics of the expression."""
    env = {name: Fraction(value) for name, value in inputs.items()}

    def go(node: RealExpr) -> Fraction:
        if isinstance(node, Var):
            return env[node.name]
        if isinstance(node, Const):
            return node.value
        if isinstance(node, Add):
            return go(node.left) + go(node.right)
        if isinstance(node, Sub):
            return go(node.left) - go(node.right)
        if isinstance(node, Mul):
            return go(node.left) * go(node.right)
        if isinstance(node, Div):
            return go(node.left) / go(node.right)
        if isinstance(node, Sqrt):
            return sqrt_round(go(node.operand), _EXACT_SQRT_PRECISION, "RN")
        if isinstance(node, Fma):
            return go(node.a) * go(node.b) + go(node.c)
        if isinstance(node, Cond):
            taken = _compare(node.guard.op, go(node.guard.left), go(node.guard.right))
            return go(node.then_branch if taken else node.else_branch)
        raise TypeError(f"unknown expression node {node!r}")

    return go(expr)


def evaluate_fp(
    expr: RealExpr, inputs: Mapping[str, Number], model: StandardModel | None = None
) -> Fraction:
    """Evaluate under correctly rounded floating-point arithmetic."""
    model = model or StandardModel()
    env = {name: model.round(Fraction(value)) for name, value in inputs.items()}

    def go(node: RealExpr) -> Fraction:
        if isinstance(node, Var):
            return env[node.name]
        if isinstance(node, Const):
            return model.round(node.value)
        if isinstance(node, Add):
            return model.add(go(node.left), go(node.right))
        if isinstance(node, Sub):
            return model.round(go(node.left) - go(node.right))
        if isinstance(node, Mul):
            return model.mul(go(node.left), go(node.right))
        if isinstance(node, Div):
            return model.div(go(node.left), go(node.right))
        if isinstance(node, Sqrt):
            return model.sqrt(go(node.operand))
        if isinstance(node, Fma):
            return model.round(go(node.a) * go(node.b) + go(node.c))
        if isinstance(node, Cond):
            taken = _compare(node.guard.op, go(node.guard.left), go(node.guard.right))
            return go(node.then_branch if taken else node.else_branch)
        raise TypeError(f"unknown expression node {node!r}")

    return go(expr)


# -- symbolic differentiation ---------------------------------------------------


def differentiate(expr: RealExpr, with_respect_to: RealExpr) -> RealExpr:
    """Symbolic derivative ``d expr / d node`` treating ``node`` as a variable.

    Differentiation with respect to an arbitrary sub-expression (not only an
    input variable) is what the FPTaylor-style baseline needs: the first-order
    error coefficient of an operation node is the derivative of the output
    with respect to that node's value.
    """

    def go(node: RealExpr) -> RealExpr:
        if node is with_respect_to or node == with_respect_to:
            return Const(Fraction(1))
        if isinstance(node, (Var, Const)):
            return Const(Fraction(0))
        if isinstance(node, Add):
            return Add(go(node.left), go(node.right))
        if isinstance(node, Sub):
            return Sub(go(node.left), go(node.right))
        if isinstance(node, Mul):
            return Add(Mul(go(node.left), node.right), Mul(node.left, go(node.right)))
        if isinstance(node, Div):
            numerator = Sub(Mul(go(node.left), node.right), Mul(node.left, go(node.right)))
            return Div(numerator, Mul(node.right, node.right))
        if isinstance(node, Sqrt):
            return Div(go(node.operand), Mul(Const(Fraction(2)), node))
        if isinstance(node, Fma):
            product = Add(Mul(go(node.a), node.b), Mul(node.a, go(node.b)))
            return Add(product, go(node.c))
        if isinstance(node, Cond):
            raise ValueError("cannot differentiate through a conditional")
        raise TypeError(f"unknown expression node {node!r}")

    return go(expr)


# -- printing --------------------------------------------------------------------


def to_string(expr: RealExpr) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Const):
        value = expr.value
        return str(value.numerator) if value.denominator == 1 else f"{value}"
    if isinstance(expr, Add):
        return f"({to_string(expr.left)} + {to_string(expr.right)})"
    if isinstance(expr, Sub):
        return f"({to_string(expr.left)} - {to_string(expr.right)})"
    if isinstance(expr, Mul):
        return f"({to_string(expr.left)} * {to_string(expr.right)})"
    if isinstance(expr, Div):
        return f"({to_string(expr.left)} / {to_string(expr.right)})"
    if isinstance(expr, Sqrt):
        return f"sqrt({to_string(expr.operand)})"
    if isinstance(expr, Fma):
        return f"fma({to_string(expr.a)}, {to_string(expr.b)}, {to_string(expr.c)})"
    if isinstance(expr, Cond):
        guard = f"{to_string(expr.guard.left)} {expr.guard.op} {to_string(expr.guard.right)}"
        return f"(if {guard} then {to_string(expr.then_branch)} else {to_string(expr.else_branch)})"
    raise TypeError(f"unknown expression node {expr!r}")
