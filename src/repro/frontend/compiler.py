"""Compiling real-expression IR into Λnum programs.

Each arithmetic operation of the expression becomes one primitive operation
application followed by a ``rnd`` (the way the paper's benchmarks are
translated into Λnum, Section 6.2); intermediate results are sequenced with
``let``/``let-bind``.  A fused multiply-add node performs the multiplication
and the addition before a *single* rounding.

Additions take a with-pair (max metric) and multiplications/divisions a
tensor pair (sum metric), exactly as in the standard instantiation (Fig. 5).
Conditional expressions are supported at the root of the expression: the
guard must compare input variables or constants, and each branch becomes an
independent monadic computation of a single ``case``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..core import ast as A
from ..core import types as T
from ..core.grades import INFINITY
from ..core.errors import LnumError
from . import expr as E

__all__ = ["CompiledProgram", "compile_expression", "CompileError"]


class CompileError(LnumError):
    """Raised when an expression cannot be translated into Λnum."""


@dataclass(frozen=True)
class CompiledProgram:
    """A Λnum term together with the skeleton typing its free input variables."""

    term: A.Term
    skeleton: Dict[str, T.Type]
    expression: E.RealExpr
    rounded_operations: int

    def input_names(self) -> Tuple[str, ...]:
        return tuple(self.skeleton)


@dataclass
class _Step:
    """One rounded operation: plain bindings followed by a single rounding."""

    bindings: List[Tuple[str, A.Term]]
    result_binding: str
    monadic_var: str


class _Compiler:
    def __init__(self, rounded: bool) -> None:
        self.rounded = rounded
        self.steps: List[_Step] = []
        self.counter = 0

    def fresh(self, hint: str) -> str:
        self.counter += 1
        return f"_{hint}{self.counter}"

    # A "ref" is a syntactic value referring to a previously computed result.
    def emit(self, node: E.RealExpr) -> A.Term:
        if isinstance(node, E.Var):
            return A.Var(node.name)
        if isinstance(node, E.Const):
            if node.value <= 0:
                raise CompileError(
                    "the RP instantiation requires strictly positive constants, "
                    f"got {node.value}"
                )
            return A.Const(node.value)
        if isinstance(node, E.Add):
            left = self.emit(node.left)
            right = self.emit(node.right)
            return self._rounded_step("add", A.WithPair(left, right), hint="s")
        if isinstance(node, E.Mul):
            left = self.emit(node.left)
            right = self.emit(node.right)
            return self._rounded_step("mul", A.TensorPair(left, right), hint="p")
        if isinstance(node, E.Div):
            left = self.emit(node.left)
            right = self.emit(node.right)
            return self._rounded_step("div", A.TensorPair(left, right), hint="q")
        if isinstance(node, E.Sqrt):
            operand = self.emit(node.operand)
            boxed = A.Box(operand, Fraction(1, 2))
            return self._rounded_step("sqrt", boxed, hint="r")
        if isinstance(node, E.Fma):
            a = self.emit(node.a)
            b = self.emit(node.b)
            c = self.emit(node.c)
            product_var = self.fresh("m")
            sum_var = self.fresh("s")
            bindings = [
                (product_var, A.Op("mul", A.TensorPair(a, b))),
                (sum_var, A.Op("add", A.WithPair(A.Var(product_var), c))),
            ]
            return self._finish_step(bindings, sum_var)
        if isinstance(node, E.Sub):
            raise CompileError(
                "subtraction is not supported by the RP instantiation of Λnum "
                "(Section 6.2.1); rewrite the benchmark without '-' "
            )
        if isinstance(node, E.Cond):
            raise CompileError("conditionals are only supported at the root of an expression")
        raise CompileError(f"cannot compile expression node {node!r}")

    def _rounded_step(self, op_name: str, argument: A.Term, hint: str) -> A.Term:
        binding = self.fresh(hint)
        return self._finish_step([(binding, A.Op(op_name, argument))], binding)

    def _finish_step(self, bindings: List[Tuple[str, A.Term]], result_binding: str) -> A.Term:
        monadic_var = self.fresh("t")
        self.steps.append(_Step(bindings, result_binding, monadic_var))
        if self.rounded:
            return A.Var(monadic_var)
        return A.Var(result_binding)

    # -- assembly ----------------------------------------------------------

    def assemble(self, final_ref: A.Term) -> A.Term:
        """Wrap the recorded steps around the final reference, inside-out."""
        if not self.steps:
            return A.Ret(final_ref) if self.rounded else final_ref

        if self.rounded:
            last = self.steps[-1]
            if isinstance(final_ref, A.Var) and final_ref.name == last.monadic_var:
                # The tail of the program is the final rounding itself.
                term: A.Term = A.Rnd(A.Var(last.result_binding))
                for name, bound in reversed(last.bindings):
                    term = A.Let(name, bound, term)
                remaining = self.steps[:-1]
            else:
                term = A.Ret(final_ref)
                remaining = self.steps
            for step in reversed(remaining):
                term = A.LetBind(step.monadic_var, A.Rnd(A.Var(step.result_binding)), term)
                for name, bound in reversed(step.bindings):
                    term = A.Let(name, bound, term)
            return term

        # Unrounded (ideal) compilation: a chain of plain lets.
        last = self.steps[-1]
        if isinstance(final_ref, A.Var) and final_ref.name == last.result_binding:
            term = last.bindings[-1][1]
            for name, bound in reversed(last.bindings[:-1]):
                term = A.Let(name, bound, term)
            remaining = self.steps[:-1]
        else:
            term = final_ref
            remaining = self.steps
        for step in reversed(remaining):
            for name, bound in reversed(step.bindings):
                term = A.Let(name, bound, term)
        return term


_COMPARISON_OPS = {">": "gt", "<": "lt", ">=": "geq"}


def compile_expression(expression: E.RealExpr, rounded: bool = True) -> CompiledProgram:
    """Translate an expression into a Λnum program.

    With ``rounded=True`` (the default) every arithmetic operation is followed
    by a ``rnd`` and the program has monadic type ``M_u num``; with
    ``rounded=False`` the program is the ideal, rounding-free computation of
    type ``num`` (useful for pure sensitivity analysis).
    """
    skeleton = {name: T.NUM for name in E.free_variables(expression)}
    operations = E.operation_count(expression)

    if isinstance(expression, E.Cond):
        term = _compile_conditional(expression, rounded)
        return CompiledProgram(term, skeleton, expression, operations)

    compiler = _Compiler(rounded)
    final_ref = compiler.emit(expression)
    term = compiler.assemble(final_ref)
    return CompiledProgram(term, skeleton, expression, operations)


def _guard_value(node: E.RealExpr) -> A.Term:
    if isinstance(node, E.Var):
        return A.Var(node.name)
    if isinstance(node, E.Const):
        return A.Const(node.value)
    raise CompileError(
        "conditional guards must compare input variables or constants so that the "
        "ideal and floating-point executions take the same branch (Section 5.1)"
    )


def _compile_conditional(expression: E.Cond, rounded: bool) -> A.Term:
    guard = expression.guard
    op = guard.op
    left, right = guard.left, guard.right
    if op == "<=":
        # x <= y  ==  y >= x
        op, left, right = ">=", right, left
    if op not in _COMPARISON_OPS:
        raise CompileError(f"unsupported comparison operator {op!r}")
    guard_term = A.Op(
        _COMPARISON_OPS[op],
        A.Box(A.TensorPair(_guard_value(left), _guard_value(right)), INFINITY),
    )

    then_program = compile_expression(expression.then_branch, rounded)
    else_program = compile_expression(expression.else_branch, rounded)
    then_term = then_program.term
    else_term = else_program.term
    if rounded:
        # Branches of plain type must be lifted into the monad so both arms agree.
        if not _is_monadic_chain(then_term):
            then_term = A.Ret(then_term)
        if not _is_monadic_chain(else_term):
            else_term = A.Ret(else_term)
    guard_var = "_guard"
    return A.Let(
        guard_var,
        guard_term,
        A.Case(A.Var(guard_var), "_then", then_term, "_else", else_term),
    )


def _is_monadic_chain(term: A.Term) -> bool:
    while isinstance(term, (A.Let, A.LetBind, A.LetBox, A.LetTensor)):
        term = term.body
    return isinstance(term, (A.Rnd, A.Ret, A.LetBind, A.Case))
