#!/usr/bin/env python3
"""Randomized and non-deterministic rounding (Section 7.2).

The neighborhood monad composes with monads for other effects.  This example
exercises the three probabilistic variants on *stochastic rounding* — the
unbiased randomized rounding increasingly used in machine-learning hardware —
and the may/must variants on tie-breaking non-determinism:

* the worst-case variant certifies the usual `eps` bound for every outcome;
* the expected-distance variant certifies the *average-case* bound, which for
  stochastic rounding is governed by the distance to the two neighbours;
* the must/may variants show the difference between demonic and angelic
  non-determinism when a tie can be broken either way.

Run with::

    python examples/stochastic_rounding.py
"""

from fractions import Fraction

from repro.floats.rounding import RoundingMode, round_to_precision
from repro.floats.ulp import ulp
from repro.metrics import ABS_METRIC, RP_METRIC
from repro.monads import (
    BestCaseProbabilisticMonad,
    ExpectedProbabilisticMonad,
    MayNondeterministicMonad,
    MustNondeterministicMonad,
    WorstCaseProbabilisticMonad,
    stochastic_rounding_distribution,
)


def stochastic_rounding_demo() -> None:
    print("Stochastic rounding of x = 0.1 (binary64)")
    value = Fraction(1, 10)
    distribution = stochastic_rounding_distribution(value)
    for outcome, probability in sorted(distribution.items()):
        print(f"  rounds to {float(outcome):.17g} with probability {float(probability):.6f}")
    mean = sum(outcome * p for outcome, p in distribution.items())
    print(f"  expectation = {float(mean):.17g} (unbiased: equals x exactly: {mean == value})")

    worst = WorstCaseProbabilisticMonad(ABS_METRIC)
    expected = ExpectedProbabilisticMonad(ABS_METRIC)
    element = (value, distribution)
    step = ulp(value)
    print(f"  worst-case grade   <= 1 ulp: {worst.contains(element, step)}")
    print(f"  expected grade     <= 1 ulp: {expected.contains(element, step)}")
    print(
        "  expected distance  = "
        f"{float(expected.expected_distance(element)):.3e} "
        f"(half an ulp would be {float(step) / 2:.3e})"
    )
    print()


def nondeterministic_ties() -> None:
    print("Non-deterministic tie breaking (may versus must)")
    value = Fraction(3, 2**53)  # exactly half way between two binary64 values
    down = round_to_precision(value, 52, RoundingMode.TOWARD_NEGATIVE)
    up = round_to_precision(value, 52, RoundingMode.TOWARD_POSITIVE)
    outcomes = frozenset({down, up})
    element = (value, outcomes)

    must = MustNondeterministicMonad(RP_METRIC)
    may = MayNondeterministicMonad(RP_METRIC)
    tight = Fraction(1, 2**54)
    loose = Fraction(1, 2**51)
    print(f"  candidate outcomes: {sorted(float(o) for o in outcomes)}")
    print(f"  must-bound {float(loose):.1e}: {must.contains(element, loose)}")
    print(f"  must-bound {float(tight):.1e}: {must.contains(element, tight)}")
    print(f"  may-bound  {float(tight):.1e}: {may.contains(element, tight)}")
    print()


def composing_stochastic_steps() -> None:
    print("Composing two stochastically rounded squarings (the pow4 shape)")
    expected = ExpectedProbabilisticMonad(RP_METRIC)
    x = Fraction(1, 3)

    def square_and_round(value: Fraction):
        exact = value * value
        return (exact, stochastic_rounding_distribution(exact))

    first = square_and_round(x)
    result = expected.bind(first, square_and_round)
    grade = expected.expected_distance(result)
    print(f"  ideal x^4              = {float(result[0]):.17g}")
    print(f"  expected RP distance   = {float(grade):.3e}")
    print(f"  worst-case type bound  = {float(3 * Fraction(1, 2**52)):.3e} (3*eps)")


if __name__ == "__main__":
    stochastic_rounding_demo()
    nondeterministic_ties()
    composing_stochastic_steps()
