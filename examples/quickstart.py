#!/usr/bin/env python3
"""Quickstart: bounding the rounding error of a small numerical program.

This example walks through the workflow of the paper on the fused
multiply-add example of Fig. 8:

1. write the program in the Λnum surface syntax,
2. run sensitivity inference to obtain the graded monadic type,
3. convert the RP grade into a relative-error bound (Equation (8)),
4. validate the bound empirically by running the ideal and floating-point
   semantics on concrete inputs and measuring the exact RP distance.

Run it with::

    python examples/quickstart.py
"""

from fractions import Fraction

from repro import analyze_source, parse_program
from repro.analysis import check_error_soundness
from repro.core import infer
from repro.core import types as T
from repro.core.parser import parse_term
from repro.floats import format_table, rounding_mode_table

SOURCE = """
# Multiply-add: two roundings (Fig. 8, left).
function mulfp (xy: (num, num)) : M[eps]num {
  s = mul xy;
  rnd s
}
function addfp (xy: <num, num>) : M[eps]num {
  s = add xy;
  rnd s
}
function MA (x: num) (y: num) (z: num) : M[2*eps]num {
  s = mulfp (x, y);
  let a = s;
  addfp (|a, z|)
}

# Fused multiply-add: a single rounding (Fig. 8, right).
function FMA (x: num) (y: num) (z: num) : M[eps]num {
  a = mul (x, y);
  b = add (|a, z|);
  rnd b
}
"""


def main() -> None:
    print("IEEE 754 formats (Table 1):")
    for row in format_table():
        print(f"  {row['format']:<10} p = {row['p']:<4} emax = {row['emax']}")
    print()
    print("Rounding modes for binary64 (Table 2):")
    for row in rounding_mode_table():
        print(f"  {row['mode']}: unit roundoff = {float(row['unit_roundoff']):.3e}")
    print()

    # Type-check both versions of the multiply-add and compare their grades.
    for function in ("MA", "FMA"):
        report = analyze_source(SOURCE, function=function)
        print(report.summary())
        print()

    # The same analysis on a bare term: the pow4 example of Section 2.3.
    pow4 = parse_term("a = mul (x, x); let t = rnd a; b = mul (t, t); rnd b")
    result = infer(pow4, {"x": T.NUM})
    print(f"pow4 : x is {result.sensitivity_of('x')}-sensitive, type {result.type}")

    # Empirical validation of Corollary 4.20 on a concrete input.
    report = check_error_soundness(pow4, {"x": T.NUM}, {"x": Fraction(3, 7)})
    print(
        "soundness check: ideal = {:.17g}, fp = {:.17g}".format(
            float(report.ideal_value), float(report.fp_value)
        )
    )
    print(
        "  measured RP distance <= {:.3e}   certified bound = {:.3e}   holds: {}".format(
            float(report.rp_upper), float(report.bound), report.holds
        )
    )


if __name__ == "__main__":
    main()
