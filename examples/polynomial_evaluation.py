#!/usr/bin/env python3
"""Polynomial evaluation: Horner's scheme, error propagation and scaling.

This example reproduces the polynomial-evaluation story of Section 5 and
Table 4 of the paper:

* Horner's scheme with fused multiply-adds has rounding error ``n * eps`` for
  a degree-``n`` polynomial — the type system derives this automatically;
* when the *inputs* already carry rounding error, the propagated error is
  governed by the sensitivity of the polynomial (Equation (13));
* the naive power-basis evaluation (the SATIRE ``Poly50`` benchmark) is far
  less accurate than Horner's scheme, and the inferred bounds show exactly
  how much;
* inference time scales linearly with the degree (the compositionality claim
  of Section 6.2.5).

Run with::

    python examples/polynomial_evaluation.py
"""

import time
from fractions import Fraction

from repro.analysis import analyze_term, check_error_soundness
from repro.benchsuite.large import horner_fma_expression, naive_polynomial_expression
from repro.benchsuite.paper_examples import PAPER_EXAMPLES
from repro import analyze_source
from repro.baselines.standard_bounds import horner_fma_bound
from repro.frontend.compiler import compile_expression


def horner_versus_naive() -> None:
    print("Horner (FMA) versus naive power-basis evaluation")
    print(f"{'degree':>6}  {'horner bound':>14}  {'naive bound':>14}  {'textbook':>14}")
    for degree in (2, 5, 10, 20, 50):
        horner = analyze_term(
            *_compiled(horner_fma_expression(degree)), name=f"Horner{degree}"
        )
        naive = analyze_term(
            *_compiled(naive_polynomial_expression(degree)), name=f"Naive{degree}"
        )
        print(
            f"{degree:>6}  {float(horner.relative_error_bound):>14.3e}  "
            f"{float(naive.relative_error_bound):>14.3e}  "
            f"{float(horner_fma_bound(degree)):>14.3e}"
        )
    print()


def _compiled(expression):
    program = compile_expression(expression)
    return program.term, program.skeleton


def error_propagation() -> None:
    print("Error propagation (Fig. 9): exact inputs versus erroneous inputs")
    plain = analyze_source(PAPER_EXAMPLES["Horner2"].source, function="Horner2")
    noisy = analyze_source(
        PAPER_EXAMPLES["Horner2_with_error"].source, function="Horner2_with_error"
    )
    print(f"  Horner2 (exact inputs)      : {plain.error_grade}")
    print(f"  Horner2 (inputs with error) : {noisy.error_grade}")
    print("  difference = 3*eps from the coefficients + 2*eps from x (4-sensitivity / 2)")
    print()


def empirical_check() -> None:
    print("Empirical check of the Horner10 bound on a concrete polynomial")
    expression = horner_fma_expression(10)
    program = compile_expression(expression)
    inputs = {name: Fraction(1, 3) for name in program.skeleton}
    inputs["x"] = Fraction(7, 5)
    report = check_error_soundness(program.term, program.skeleton, inputs)
    print(f"  certified RP bound : {float(report.bound):.3e}")
    print(f"  observed RP error  : {float(report.rp_upper):.3e}")
    print(f"  bound holds        : {report.holds}")
    print()


def scaling() -> None:
    print("Inference time scales linearly with the degree")
    for degree in (10, 50, 100, 200):
        program = compile_expression(horner_fma_expression(degree))
        start = time.perf_counter()
        analyze_term(program.term, program.skeleton, name=f"Horner{degree}")
        elapsed = time.perf_counter() - start
        print(f"  degree {degree:>4}: {elapsed * 1e3:8.2f} ms")
    print()


if __name__ == "__main__":
    horner_versus_naive()
    error_propagation()
    empirical_check()
    scaling()
