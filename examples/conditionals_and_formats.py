#!/usr/bin/env python3
"""Conditionals, rounding modes and custom floating-point formats.

Three shorter scenarios from Sections 5–6 of the paper:

1. **Robust Pythagorean sums** (Table 5): a conditional program whose two
   branches have different rounding behaviour; the inferred bound covers the
   worst branch, and the ideal/floating-point runs take the same branch
   because the guard only inspects inputs.
2. **Changing the instantiation**: the ``rnd`` grade is a parameter of the
   analysis.  Re-running inference with the binary32 unit roundoff, or with
   round-to-nearest, changes the certified bounds but not the program.
3. **Exceptional behaviour** (Section 7.1): with the format-aware semantics,
   overflowing computations evaluate to ``err`` instead of silently violating
   the bound.

Run with::

    python examples/conditionals_and_formats.py
"""

from fractions import Fraction

from repro.analysis import analyze_term, check_error_soundness
from repro.benchsuite.conditionals import table5_benchmarks
from repro.core import InferenceConfig
from repro.core.grades import Grade
from repro.core.parser import parse_term
from repro.core import types as T
from repro.core.semantics import evaluate, fp_config
from repro.core.semantics.values import ErrV
from repro.floats import BINARY32, BINARY64, RoundingMode


def conditional_benchmarks() -> None:
    print("Table 5: conditional benchmarks")
    for bench in table5_benchmarks():
        analysis = bench.analyze_lnum()
        print(f"  {bench.name:<20} grade = {analysis.error_grade}   "
              f"relative error <= {float(analysis.relative_error_bound):.3e}")
        inputs = {name: Fraction(3, 2) for name in bench.skeleton}
        report = check_error_soundness(bench.term, bench.skeleton, inputs)
        print(f"  {'':<20} empirical check on inputs=1.5: holds = {report.holds}")
    print()


def changing_the_instantiation() -> None:
    print("Same program, different instantiations of the rnd grade")
    term = parse_term("a = mul (x, x); b = add (|a, y|); rnd b")
    skeleton = {"x": T.NUM, "y": T.NUM}
    instantiations = {
        "binary64, round towards +inf": BINARY64.unit_roundoff_directed,
        "binary64, round to nearest": BINARY64.unit_roundoff_nearest,
        "binary32, round towards +inf": BINARY32.unit_roundoff_directed,
    }
    for label, unit in instantiations.items():
        config = InferenceConfig().with_rnd_grade(Grade.constant(unit))
        analysis = analyze_term(term, skeleton, config, name=label)
        print(f"  {label:<30} bound = {float(analysis.relative_error_bound):.3e}")
    print()


def exceptional_values() -> None:
    print("Section 7.1: overflow produces err under the exceptional semantics")
    term = parse_term("s = mul (x, x); rnd s")
    config = fp_config(exceptional=True)
    for exponent in (100, 500, 600):
        value = evaluate(term, {"x": _num(Fraction(2) ** exponent)}, config)
        outcome = "err (overflow)" if isinstance(value, ErrV) else "finite"
        print(f"  x = 2^{exponent:<4} -> x*x rounds to: {outcome}")
    print()


def _num(value: Fraction):
    from repro.core.semantics.values import NumV

    return NumV(value)


if __name__ == "__main__":
    conditional_benchmarks()
    changing_the_instantiation()
    exceptional_values()
