"""Tests for the term syntax: values, free variables, substitution, printing."""

from fractions import Fraction

import pytest

from repro.core import ast as A
from repro.core.types import NUM


def _lambda_identity() -> A.Lambda:
    return A.Lambda("x", NUM, A.Var("x"))


class TestValues:
    def test_simple_values(self):
        assert A.is_value(A.Var("x"))
        assert A.is_value(A.UnitVal())
        assert A.is_value(A.Const(3))
        assert A.is_value(_lambda_identity())
        assert A.is_value(A.Err())

    def test_structured_values(self):
        assert A.is_value(A.WithPair(A.Var("x"), A.Const(1)))
        assert A.is_value(A.TensorPair(A.Var("x"), A.Var("y")))
        assert A.is_value(A.Inl(A.UnitVal()))
        assert A.is_value(A.Box(A.Var("x"), 2))
        assert A.is_value(A.Rnd(A.Const(1)))
        assert A.is_value(A.Ret(A.Var("x")))

    def test_blocked_let_bind_is_a_value(self):
        term = A.LetBind("y", A.Rnd(A.Const(1)), A.Ret(A.Var("y")))
        assert A.is_value(term)

    def test_non_values(self):
        assert not A.is_value(A.App(_lambda_identity(), A.Const(1)))
        assert not A.is_value(A.Op("add", A.WithPair(A.Const(1), A.Const(2))))
        assert not A.is_value(A.Let("x", A.Const(1), A.Var("x")))
        assert not A.is_value(A.LetBind("y", A.Ret(A.Const(1)), A.Ret(A.Var("y"))))

    def test_const_stores_exact_fraction(self):
        assert A.Const("0.1").value == Fraction(1, 10)
        assert A.Const(3).value == Fraction(3)

    def test_proj_index_validation(self):
        with pytest.raises(ValueError):
            A.Proj(3, A.Var("p"))

    def test_boolean_encodings(self):
        assert isinstance(A.true_value(), A.Inl)
        assert isinstance(A.false_value(), A.Inr)


class TestFreeVariables:
    def test_var(self):
        assert A.free_variables(A.Var("x")) == {"x"}

    def test_lambda_binds(self):
        term = A.Lambda("x", NUM, A.App(A.Var("f"), A.Var("x")))
        assert A.free_variables(term) == {"f"}

    def test_let_binds_body_only(self):
        term = A.Let("x", A.Var("y"), A.Var("x"))
        assert A.free_variables(term) == {"y"}

    def test_let_tensor_binds_two(self):
        term = A.LetTensor("a", "b", A.Var("p"), A.TensorPair(A.Var("a"), A.Var("b")))
        assert A.free_variables(term) == {"p"}

    def test_case_binds_per_branch(self):
        term = A.Case(A.Var("s"), "l", A.Var("l"), "r", A.Var("z"))
        assert A.free_variables(term) == {"s", "z"}


class TestSubstitution:
    def test_simple(self):
        term = A.substitute(A.Var("x"), {"x": A.Const(1)})
        assert isinstance(term, A.Const) and term.value == 1

    def test_shadowed_binder_not_substituted(self):
        term = A.Let("x", A.Const(1), A.Var("x"))
        result = A.substitute(term, {"x": A.Const(99)})
        assert isinstance(result.body, A.Var) and result.body.name == "x"

    def test_capture_avoidance(self):
        # (λy. x) with x := y must not capture the bound y.
        term = A.Lambda("y", NUM, A.Var("x"))
        result = A.substitute(term, {"x": A.Var("y")})
        assert isinstance(result, A.Lambda)
        assert result.parameter != "y"
        assert isinstance(result.body, A.Var) and result.body.name == "y"

    def test_substitutes_inside_operations(self):
        term = A.Op("add", A.WithPair(A.Var("x"), A.Var("y")))
        result = A.substitute(term, {"x": A.Const(1), "y": A.Const(2)})
        assert A.free_variables(result) == set()

    def test_substitution_in_case_branches(self):
        term = A.Case(A.Var("s"), "l", A.Var("z"), "r", A.Var("z"))
        result = A.substitute(term, {"z": A.Const(5)})
        assert A.free_variables(result) == {"s"}


class TestUtilities:
    def test_term_size_counts_nodes(self):
        term = A.Op("add", A.WithPair(A.Var("x"), A.Var("y")))
        assert A.term_size(term) == 4

    def test_count_rounds(self):
        term = A.LetBind("t", A.Rnd(A.Var("a")), A.Rnd(A.Var("t")))
        assert A.count_rounds(term) == 2

    def test_count_operations(self):
        term = A.Let("s", A.Op("mul", A.TensorPair(A.Var("x"), A.Var("x"))), A.Rnd(A.Var("s")))
        assert A.count_operations(term) == 1

    def test_pretty_round_trips_concepts(self):
        term = A.LetBind("t", A.Rnd(A.Var("a")), A.Ret(A.Var("t")))
        rendered = A.pretty(term)
        assert "let-bind" in rendered and "rnd a" in rendered

    def test_fresh_name_avoids_collisions(self):
        avoid = {"x", "x%0", "x%1"}
        name = A.fresh_name("x", avoid)
        assert name not in avoid
