"""Tests for the batch analysis engine and its content-keyed cache."""

import json
import os
import re

import pytest

from repro.analysis.batch import BatchAnalyzer, BatchItem, discover_items
from repro.analysis.cache import AnalysisCache, config_key, make_key, source_key
from repro.cli import main
from repro.core.inference import InferenceConfig

EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples", "programs"
)

FMA = """
function FMA (x: num) (y: num) (z: num) : M[eps]num {
  a = mul (x, y);
  b = add (|a, z|);
  rnd b
}
"""

HORNER = """
function FMA (x: num) (y: num) (z: num) : M[eps]num {
  a = mul (x, y);
  b = add (|a, z|);
  rnd b
}
function Horner2 (a0: num) (a1: num) (a2: num) (x: ![2]num) : M[2*eps]num {
  let [x1] = x;
  s1 = FMA a2 x1 a1;
  let z = s1;
  FMA z x1 a0
}
"""

BROKEN = "function f (x num { rnd x }"


def _items():
    return [
        BatchItem(name="fma", kind="lnum", source=FMA),
        BatchItem(name="horner", kind="lnum", source=HORNER),
    ]


class TestDiscovery:
    def test_directory_scan_is_sorted_and_typed(self):
        items = discover_items([EXAMPLES])
        names = [os.path.basename(item.name) for item in items]
        assert names == sorted(names)
        kinds = {os.path.basename(item.name): item.kind for item in items}
        assert kinds["hypot.fpcore"] == "fpcore"
        assert kinds["horner2.lnum"] == "lnum"

    def test_explicit_file(self):
        items = discover_items([os.path.join(EXAMPLES, "fma.lnum")])
        assert len(items) == 1 and items[0].kind == "lnum"


class TestCache:
    def test_hit_miss_and_disk_persistence(self, tmp_path):
        cache = AnalysisCache(directory=str(tmp_path))
        key = make_key("probe", 1)
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        cache.put(key, {"x": 42})
        assert cache.get(key) == {"x": 42}
        assert cache.stats.hits == 1
        # A fresh cache over the same directory reads the persisted entry.
        other = AnalysisCache(directory=str(tmp_path))
        assert other.get(key) == {"x": 42}
        assert other.stats.hits == 1

    def test_memory_only_cache(self):
        cache = AnalysisCache()
        key = make_key("probe", 2)
        cache.put(key, "value")
        assert cache.get(key) == "value"

    @pytest.mark.parametrize("garbage", [b"not a pickle", b"garbage\n", b"\x80", b""])
    def test_corrupt_disk_entry_is_a_miss(self, tmp_path, garbage):
        # pickle.load raises different exception types per corruption shape
        # (UnpicklingError, ValueError, EOFError, ...); all must be misses.
        cache = AnalysisCache(directory=str(tmp_path))
        key = make_key("probe", 3)
        cache.put(key, "value")
        path = os.path.join(str(tmp_path), f"{key}.pkl")
        with open(path, "wb") as handle:
            handle.write(garbage)
        fresh = AnalysisCache(directory=str(tmp_path))
        assert fresh.get(key) is None
        assert not os.path.exists(path)

    def test_source_key_separates_config_and_content(self):
        base = source_key(FMA, "lnum", None)
        assert source_key(FMA, "lnum", None) == base
        assert source_key(FMA + " ", "lnum", None) != base
        assert source_key(FMA, "fpcore", None) != base
        binary32 = InferenceConfig().with_rnd_grade("2*eps")
        assert source_key(FMA, "lnum", binary32) != base

    def test_config_key_mentions_instantiation(self):
        assert "rnd=eps" in config_key(None)
        assert "rnd=3*eps" in config_key(InferenceConfig().with_rnd_grade("3*eps"))

    def test_clear_removes_disk_entries(self, tmp_path):
        cache = AnalysisCache(directory=str(tmp_path))
        cache.put(make_key("probe", 4), "value")
        cache.clear()
        fresh = AnalysisCache(directory=str(tmp_path))
        assert fresh.get(make_key("probe", 4)) is None


class TestBatchAnalyzer:
    def test_serial_reports_in_input_order(self):
        result = BatchAnalyzer().analyze_items(_items())
        assert [report.name for report in result.reports] == ["fma", "horner"]
        assert result.failures == 0
        assert result.functions == 3

    def test_parallel_matches_serial(self):
        serial = BatchAnalyzer(jobs=1).analyze_items(_items())
        parallel = BatchAnalyzer(jobs=2).analyze_items(_items())
        assert [r.name for r in parallel.reports] == [r.name for r in serial.reports]
        assert [r.bounds() for r in parallel.reports] == [r.bounds() for r in serial.reports]
        grades = lambda res: [
            [str(a.error_grade) for a in r.analyses] for r in res.reports
        ]
        assert grades(parallel) == grades(serial)

    def test_cache_warm_run_marks_reports(self, tmp_path):
        cache = AnalysisCache(directory=str(tmp_path))
        cold = BatchAnalyzer(cache=cache).analyze_items(_items())
        assert all(not report.from_cache for report in cold.reports)
        warm_cache = AnalysisCache(directory=str(tmp_path))
        warm = BatchAnalyzer(cache=warm_cache).analyze_items(_items())
        assert all(report.from_cache for report in warm.reports)
        assert [r.bounds() for r in warm.reports] == [r.bounds() for r in cold.reports]

    def test_cached_report_is_not_mutated_in_store(self):
        cache = AnalysisCache()
        engine = BatchAnalyzer(cache=cache)
        engine.analyze_items(_items()[:1])
        warm = engine.analyze_items(_items()[:1])
        again = engine.analyze_items(_items()[:1])
        assert warm.reports[0].from_cache and again.reports[0].from_cache
        key = source_key(FMA, "lnum", None)
        assert cache.get(key).from_cache is False

    def test_failures_are_reported_not_raised(self):
        items = [BatchItem(name="bad", kind="lnum", source=BROKEN)] + _items()
        result = BatchAnalyzer(jobs=2).analyze_items(items)
        assert result.failures == 1
        assert result.reports[0].failed and result.reports[0].error
        assert result.reports[1].ok and result.reports[2].ok

    def test_cache_stats_are_per_run_not_lifetime(self):
        cache = AnalysisCache()
        engine = BatchAnalyzer(cache=cache)
        cold = engine.analyze_items(_items())
        assert (cold.cache_stats.hits, cold.cache_stats.misses) == (0, 2)
        warm = engine.analyze_items(_items())
        assert (warm.cache_stats.hits, warm.cache_stats.misses) == (2, 0)
        assert warm.to_dict()["aggregate"]["cache_lookups"] == 2

    def test_parse_cache_reused_across_configs(self):
        cache = AnalysisCache()
        BatchAnalyzer(cache=cache).analyze_items(_items())
        BatchAnalyzer(
            cache=cache, config=InferenceConfig().with_rnd_grade("2*eps")
        ).analyze_items(_items())
        # The second run misses the result cache (different config) but
        # reuses the memoized parse trees.
        assert cache.parse_stats.hits == 2
        assert cache.parse_stats.misses == 2

    def test_different_configs_do_not_share_cache_entries(self):
        cache = AnalysisCache()
        symbolic = BatchAnalyzer(cache=cache).analyze_items(_items()[:1])
        scaled = BatchAnalyzer(
            cache=cache, config=InferenceConfig().with_rnd_grade("2*eps")
        ).analyze_items(_items()[:1])
        assert not scaled.reports[0].from_cache
        a, b = symbolic.reports[0].analyses[0], scaled.reports[0].analyses[0]
        assert str(a.error_grade) == "eps" and str(b.error_grade) == "2*eps"


class TestBatchCommand:
    def test_batch_bounds_match_serial_check(self, capsys):
        """`repro batch --jobs 4` reports byte-identical bounds to `repro check`."""
        lnum_paths = sorted(
            os.path.join(EXAMPLES, name)
            for name in os.listdir(EXAMPLES)
            if name.endswith(".lnum")
        )
        expected_lines = []
        for path in lnum_paths:
            assert main(["check", path]) == 0
            out = capsys.readouterr().out
            expected_lines.extend(re.findall(r"relative error : \S+", out))
        assert main(["batch", *lnum_paths, "--jobs", "4", "--no-cache"]) == 0
        batch_out = capsys.readouterr().out
        batch_lines = re.findall(r"relative error : \S+", batch_out)
        assert batch_lines == expected_lines
        assert expected_lines  # sanity: the examples produced bounds at all

    def test_batch_json_output(self, capsys):
        assert main(["batch", EXAMPLES, "--json", "--no-cache"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["aggregate"]["failures"] == 0
        assert payload["aggregate"]["programs"] == len(payload["programs"])
        by_name = {
            os.path.basename(program["name"]): program for program in payload["programs"]
        }
        horner = by_name["horner2.lnum"]
        grades = {fn["name"]: fn["error_grade"] for fn in horner["functions"]}
        assert grades == {"FMA": "eps", "Horner2": "2*eps"}
        hypot = by_name["hypot.fpcore"]
        assert hypot["functions"][0]["error_grade"] == "5/2*eps"

    def test_batch_json_deterministic_order(self, capsys):
        assert main(["batch", EXAMPLES, "--json", "--no-cache"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["batch", EXAMPLES, "--json", "--no-cache", "--jobs", "2"]) == 0
        second = json.loads(capsys.readouterr().out)
        names = lambda payload: [program["name"] for program in payload["programs"]]
        assert names(first) == names(second)
        bounds = lambda payload: [
            [fn["relative_error_bound_exact"] for fn in program["functions"]]
            for program in payload["programs"]
        ]
        assert bounds(first) == bounds(second)

    def test_batch_cache_dir_round_trip(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["batch", EXAMPLES, "--cache-dir", cache_dir]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "[cached]" in out

    def test_batch_reports_failures_via_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.lnum"
        bad.write_text(BROKEN)
        assert main(["batch", str(bad), "--no-cache"]) == 2

    def test_batch_annotation_violation_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "violate.lnum"
        bad.write_text("function f (x: num) : M[0]num { rnd x }\n")
        assert main(["batch", str(bad), "--no-cache"]) == 1


class TestTermFingerprint:
    def test_fingerprint_is_content_sensitive(self):
        from repro.core.ast import term_fingerprint
        from repro.core.parser import parse_program

        base = parse_program(FMA).term_for("FMA")
        same = parse_program(FMA).term_for("FMA")
        tweaked = parse_program(FMA.replace("rnd b", "ret b")).term_for("FMA")
        assert term_fingerprint(base) == term_fingerprint(same)
        assert term_fingerprint(base) != term_fingerprint(tweaked)

    def test_benchmark_keys_digest_term_structure(self):
        # A changed benchmark definition must change the cache key even when
        # name and operation counts are preserved (stale-row regression).
        from repro.benchsuite.conditionals import conditional_benchmark
        from repro.core.ast import term_fingerprint

        benchmark = conditional_benchmark("squareRoot3")
        other = conditional_benchmark("squareRoot3Invalid")  # same ops, same grade
        assert benchmark.operations == other.operations
        assert term_fingerprint(benchmark.term) != term_fingerprint(other.term)


class TestRunnerIntegration:
    def test_table5_rows_through_engine_match_serial(self, tmp_path):
        from repro.benchsuite.runner import table5_rows

        plain = table5_rows()
        cache = AnalysisCache(directory=str(tmp_path))
        cold = table5_rows(engine=BatchAnalyzer(jobs=2, cache=cache))
        warm = table5_rows(engine=BatchAnalyzer(cache=AnalysisCache(directory=str(tmp_path))))
        strip = lambda rows: [
            {k: v for k, v in row.items() if k != "lnum_seconds"} for row in rows
        ]
        assert strip(cold) == strip(plain)
        assert strip(warm) == strip(plain)

    def test_runner_main_prints_cache_footer(self, tmp_path, capsys):
        from repro.benchsuite.runner import main as runner_main

        assert runner_main(["table5", "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "[analysis" in out and "cache 0/4 hits" in out
        assert runner_main(["table5", "--cache-dir", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        assert "cache 4/4 hits" in out
