"""Tests for the observability layer: metrics, tracing, instrumentation, logs.

Four groups:

* metric primitives and the Prometheus text exposition (format pinned —
  dashboards parse these lines);
* the ``Instrumentation`` phase-timing handle and its no-op singleton;
* request tracing through a real :class:`AnalysisService` (span names,
  id propagation, cache-tier attribution, coalesced requests sharing one
  inference's engine spans, the slow-request ring buffer);
* the cluster router: trace ids minted at the first hop, ``router.route``
  spans prepended, and per-worker-labeled metric aggregation.
"""

import asyncio
import io
import json
import logging
import os

import pytest

from repro.obs.instrument import NULL_INSTRUMENTATION, Instrumentation
from repro.obs.logs import JsonLineFormatter, configure_logging
from repro.obs.metrics import (
    CounterGroup,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.trace import RequestTrace, new_trace_id, requested_trace_id
from repro.perf.service_bench import _RouterHarness, _ServerHarness
from repro.service import AnalysisService, ServiceClient, ServiceConfig
from repro.service.client import PipelinedClient

EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples", "programs"
)

FMA_SOURCE = """
function FMA (x: num) (y: num) (z: num) : M[eps]num {
  a = mul (x, y);
  b = add (|a, z|);
  rnd b
}
"""

HORNER_SOURCE = open(os.path.join(EXAMPLES, "horner2.lnum")).read()


def run(coroutine):
    return asyncio.run(coroutine)


async def make_service(**overrides):
    config = ServiceConfig(**{"jobs": 1, **overrides})
    service = AnalysisService(config)
    await service.start()
    return service


def span_names(response):
    return [span["name"] for span in response["trace"]["spans"]]


def engine_spans(response):
    return [
        (span["name"], span["seconds"])
        for span in response["trace"]["spans"]
        if span["name"].startswith("engine.")
    ]


# ---------------------------------------------------------------------------
# Metric primitives
# ---------------------------------------------------------------------------


class TestMetricsPrimitives:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", "X.")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge = registry.gauge("repro_depth", "Depth.")
        gauge.set(3.0)
        gauge.inc()
        gauge.dec(0.5)
        assert gauge.value == 3.5

    def test_same_name_and_labels_share_storage(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", op="analyze")
        b = registry.counter("repro_x_total", op="analyze")
        c = registry.counter("repro_x_total", op="validate")
        assert a is b and a is not c

    def test_type_conflict_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total")

    def test_histogram_snapshot_and_quantiles(self):
        histogram = Histogram(buckets=(0.001, 0.01, 0.1, 1.0))
        for value in (0.0005, 0.0005, 0.05, 0.5):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(0.551)
        # Cumulative bucket counts, +Inf last.
        assert snapshot["buckets"] == [
            [0.001, 2],
            [0.01, 2],
            [0.1, 3],
            [1.0, 4],
            ["+Inf", 4],
        ]
        # The median falls in the first bucket, p99 in the last finite one.
        assert 0.0 < snapshot["p50"] <= 0.001
        assert 0.1 < snapshot["p99"] <= 1.0

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_overflow_observation_lands_in_inf_bucket(self):
        histogram = Histogram(buckets=(0.1,))
        histogram.observe(5.0)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == [[0.1, 0], ["+Inf", 1]]
        assert histogram.quantile(0.5) == pytest.approx(5.0)

    def test_counter_group_keeps_dict_idioms(self):
        registry = MetricsRegistry()
        group = registry.group("repro_test", ["requests", "errors"], "T.")
        group["requests"] += 1
        group.inc("requests")
        assert group["requests"] == 2
        assert dict(group) == {"requests": 2, "errors": 0}
        assert {**group} == {"requests": 2, "errors": 0}
        # The storage is the registry's: the group wrote through.
        assert registry.counter("repro_test_requests_total").value == 2

    def test_collector_callbacks_sample_at_snapshot_time(self):
        registry = MetricsRegistry()
        box = {"value": 1}
        registry.counter_func("repro_box_total", lambda: box["value"], "B.")
        box["value"] = 7
        [metric] = registry.to_dict()["metrics"]
        assert metric["samples"][0]["value"] == 7

    def test_failing_collector_is_skipped_not_fatal(self):
        registry = MetricsRegistry()

        def explode():
            raise RuntimeError("collector died")

        registry.counter_func("repro_bad_total", explode, "B.")
        registry.counter("repro_good_total", "G.").inc()
        names = [metric["name"] for metric in registry.to_dict()["metrics"]]
        samples = {
            metric["name"]: metric["samples"]
            for metric in registry.to_dict()["metrics"]
        }
        assert "repro_good_total" in names
        assert samples["repro_bad_total"] == []
        # And the text exposition still renders.
        assert "repro_good_total 1" in registry.render_prometheus()


# ---------------------------------------------------------------------------
# Prometheus text exposition (format stability)
# ---------------------------------------------------------------------------


class TestPrometheusFormat:
    def test_exposition_text_is_pinned(self):
        registry = MetricsRegistry()
        registry.counter("repro_demo_total", "Demo counter.", op="analyze").inc(3)
        histogram = registry.histogram(
            "repro_demo_seconds", "Demo latency.", buckets=(0.1, 1.0), tier="hot"
        )
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        expected = (
            "# HELP repro_demo_seconds Demo latency.\n"
            "# TYPE repro_demo_seconds histogram\n"
            'repro_demo_seconds_bucket{le="0.1",tier="hot"} 1\n'
            'repro_demo_seconds_bucket{le="1.0",tier="hot"} 2\n'
            'repro_demo_seconds_bucket{le="+Inf",tier="hot"} 3\n'
            'repro_demo_seconds_sum{tier="hot"} ' + repr(0.05 + 0.5 + 5.0) + "\n"
            'repro_demo_seconds_count{tier="hot"} 3\n'
            "# HELP repro_demo_total Demo counter.\n"
            "# TYPE repro_demo_total counter\n"
            'repro_demo_total{op="analyze"} 3\n'
        )
        assert registry.render_prometheus() == expected

    def test_extra_labels_merge_snapshots_under_one_header(self):
        worker0 = MetricsRegistry()
        worker0.counter("repro_req_total", "R.").inc(2)
        worker1 = MetricsRegistry()
        worker1.counter("repro_req_total", "R.").inc(5)
        text = render_prometheus(
            [
                ({"worker": "0"}, worker0.to_dict()),
                ({"worker": "1"}, worker1.to_dict()),
            ]
        )
        assert text.count("# TYPE repro_req_total counter") == 1
        assert 'repro_req_total{worker="0"} 2' in text
        assert 'repro_req_total{worker="1"} 5' in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_esc_total", "E.", path='a"b\\c').inc()
        assert 'repro_esc_total{path="a\\"b\\\\c"} 1' in registry.render_prometheus()


# ---------------------------------------------------------------------------
# Instrumentation handle
# ---------------------------------------------------------------------------


class TestInstrumentation:
    def test_observe_accumulates_and_breakdown_merges(self):
        instrumentation = Instrumentation()
        instrumentation.observe("interpret", 0.25)
        instrumentation.observe("interpret", 0.25)
        instrumentation.observe("parse", 0.1)
        instrumentation.count("memo_hits", 3)
        instrumentation.count("memo_hits")
        assert instrumentation.breakdown() == {
            "interpret": 0.5,
            "parse": 0.1,
            "memo_hits": 4,
        }

    def test_time_context_manager_records_the_phase(self):
        instrumentation = Instrumentation()
        with instrumentation.time("lower"):
            pass
        assert instrumentation.phases["lower"] >= 0.0

    def test_null_instrumentation_is_disabled_and_inert(self):
        assert NULL_INSTRUMENTATION.enabled is False
        NULL_INSTRUMENTATION.observe("interpret", 1.0)
        NULL_INSTRUMENTATION.count("memo_hits")
        assert NULL_INSTRUMENTATION.phases == {}
        assert NULL_INSTRUMENTATION.counts == {}

    def test_inference_reports_phase_breakdown(self):
        from repro.core import parse_program
        from repro.core.inference import InferenceConfig, infer

        program = parse_program(FMA_SOURCE)
        definition = program.definitions[0]
        instrumentation = Instrumentation()
        infer(
            definition.body,
            definition.parameter_skeleton(),
            InferenceConfig(),
            engine="interpreted",
            instrumentation=instrumentation,
        )
        assert instrumentation.phases.get("interpret", 0.0) > 0.0

    def test_measure_overhead_report_shape(self):
        from repro.perf.bench import measure_overhead

        report = measure_overhead(target_nodes=300, repeats=1)
        assert report["family"] == "horner"
        assert report["engines"]
        for entry in report["engines"]:
            assert entry["plain_seconds"] > 0.0
            assert entry["instrumented_seconds"] > 0.0
            assert entry["overhead_ratio"] > 0.0


# ---------------------------------------------------------------------------
# Trace helpers
# ---------------------------------------------------------------------------


class TestTraceHelpers:
    def test_new_trace_ids_are_64_bit_hex_and_distinct(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert len(trace_id) == 16
            int(trace_id, 16)

    def test_requested_trace_id_interpretation(self):
        assert requested_trace_id("abc123") == "abc123"
        minted = requested_trace_id(True)
        assert isinstance(minted, str) and len(minted) == 16
        for junk in (None, False, "", 5, 1.0, [], {}):
            assert requested_trace_id(junk) is None

    def test_trace_to_dict_keeps_span_order_and_attributes(self):
        trace = RequestTrace("feedc0de00000000")
        trace.add("cache.lookup", 0.001, tier="miss")
        trace.add("queue.wait", 0.002)
        assert trace.to_dict() == {
            "id": "feedc0de00000000",
            "spans": [
                {"name": "cache.lookup", "seconds": 0.001, "tier": "miss"},
                {"name": "queue.wait", "seconds": 0.002},
            ],
        }


# ---------------------------------------------------------------------------
# Structured logging
# ---------------------------------------------------------------------------


@pytest.fixture
def repro_logger_state():
    """Snapshot and restore the ``repro`` logger around a configure call."""
    logger = logging.getLogger("repro")
    saved = (list(logger.handlers), logger.propagate, logger.level)
    yield logger
    logger.handlers, logger.propagate = saved[0], saved[1]
    logger.setLevel(saved[2])


class TestLogging:
    def test_json_lines_carry_the_documented_fields(self, repro_logger_state):
        stream = io.StringIO()
        configure_logging(
            "debug", json_lines=True, process_name="worker-3", stream=stream
        )
        logging.getLogger("repro.service.router").warning("worker %d lost", 1)
        entry = json.loads(stream.getvalue().strip())
        assert entry["level"] == "warning"
        assert entry["logger"] == "repro.service.router"
        assert entry["message"] == "worker 1 lost"
        assert entry["process"] == "worker-3"
        assert "T" in entry["ts"]

    def test_exceptions_are_embedded_in_the_json_entry(self):
        formatter = JsonLineFormatter()
        try:
            raise ValueError("boom")
        except ValueError:
            import sys

            record = logging.LogRecord(
                "repro.test", logging.ERROR, __file__, 1, "failed", (), sys.exc_info()
            )
        entry = json.loads(formatter.format(record))
        assert "ValueError: boom" in entry["exception"]
        assert "process" not in entry

    def test_reconfiguration_replaces_the_handler(self, repro_logger_state):
        logger = configure_logging("info", stream=io.StringIO())
        configure_logging("debug", json_lines=True, stream=io.StringIO())
        marked = [
            handler
            for handler in logger.handlers
            if getattr(handler, "_repro_obs_handler", False)
        ]
        assert len(marked) == 1
        assert logger.propagate is False
        assert logger.level == logging.DEBUG

    def test_level_filtering_applies(self, repro_logger_state):
        stream = io.StringIO()
        configure_logging("error", json_lines=True, stream=stream)
        logging.getLogger("repro.service.server").info("quiet")
        assert stream.getvalue() == ""


# ---------------------------------------------------------------------------
# Service-core tracing (deterministic asyncio, no sockets)
# ---------------------------------------------------------------------------


class TestServiceTracing:
    def test_minted_trace_covers_the_request_path(self):
        async def scenario():
            service = await make_service()
            response = await service.handle(
                {"op": "analyze", "source": FMA_SOURCE, "trace": True}
            )
            assert response["status"] == "ok"
            trace = response["trace"]
            assert len(trace["id"]) == 16
            names = span_names(response)
            assert names[0] == "normalize"
            assert "cache.lookup" in names
            assert "queue.wait" in names
            assert "engine.select" in names
            lookup = next(
                span
                for span in trace["spans"]
                if span["name"] == "cache.lookup"
            )
            assert lookup["tier"] == "miss"
            assert engine_spans(response)
            for span in trace["spans"]:
                assert span["seconds"] >= 0.0
            await service.stop()

        run(scenario())

    def test_caller_supplied_trace_id_is_echoed(self):
        async def scenario():
            service = await make_service()
            response = await service.handle(
                {"op": "analyze", "source": FMA_SOURCE, "trace": "cafe0000cafe0000"}
            )
            assert response["trace"]["id"] == "cafe0000cafe0000"
            await service.stop()

        run(scenario())

    def test_cache_hit_traces_the_memory_tier_without_engine_spans(self):
        async def scenario():
            service = await make_service()
            await service.handle({"op": "analyze", "source": FMA_SOURCE})
            response = await service.handle(
                {"op": "analyze", "source": FMA_SOURCE, "trace": True}
            )
            assert response["cached"] is True
            lookup = next(
                span
                for span in response["trace"]["spans"]
                if span["name"] == "cache.lookup"
            )
            assert lookup["tier"] == "memory"
            assert not engine_spans(response)
            await service.stop()

        run(scenario())

    def test_coalesced_traces_share_the_single_inference_spans(self):
        async def scenario():
            service = await make_service()
            responses = await asyncio.gather(
                *[
                    service.handle(
                        {"op": "analyze", "source": HORNER_SOURCE, "trace": True}
                    )
                    for _ in range(6)
                ]
            )
            assert [response["status"] for response in responses] == ["ok"] * 6
            assert service.counters["inferences"] == 1
            coalesced = [r for r in responses if r["coalesced"]]
            assert coalesced
            for response in coalesced:
                assert "coalesce" in span_names(response)
            # One inference, one phases dict: every non-cached response
            # reports byte-identical engine spans.
            shared = {
                tuple(engine_spans(response))
                for response in responses
                if not response["cached"]
            }
            assert len(shared) == 1
            # Each rider still has its own trace identity.
            ids = {response["trace"]["id"] for response in responses}
            assert len(ids) == 6
            await service.stop()

        run(scenario())

    def test_untraced_requests_carry_no_trace_key(self):
        async def scenario():
            service = await make_service()
            response = await service.handle({"op": "analyze", "source": FMA_SOURCE})
            assert "trace" not in response
            await service.stop()

        run(scenario())

    def test_slow_request_ring_buffer(self):
        async def scenario():
            service = await make_service(slow_request_seconds=1e-9, slow_log_entries=4)
            for _ in range(6):
                await service.handle({"op": "analyze", "source": FMA_SOURCE})
            slow = service.stats()["slow_requests"]
            assert 0 < len(slow) <= 4  # ring buffer capacity holds
            entry = slow[-1]
            assert entry["op"] == "analyze"
            assert entry["status"] == "ok"
            assert entry["seconds"] > 0.0
            assert entry["key"]
            await service.stop()

        run(scenario())

    def test_metrics_op_reports_the_catalog(self):
        async def scenario():
            service = await make_service()
            await service.handle({"op": "analyze", "source": FMA_SOURCE})
            response = await service.handle({"op": "metrics"})
            assert response["status"] == "ok"
            names = {metric["name"] for metric in response["metrics"]["metrics"]}
            assert {
                "repro_service_requests_total",
                "repro_service_inferences_total",
                "repro_request_seconds",
                "repro_cache_lookup_seconds",
                "repro_queue_wait_seconds",
                "repro_engine_phase_seconds",
                "repro_scheduler_submitted_total",
                "repro_scheduler_lane_requests_total",
                "repro_scheduler_queue_depth",
                "repro_cache_hits_total",
                "repro_parse_cache_hits_total",
                "repro_service_inflight",
            } <= names
            prom = await service.handle({"op": "metrics", "format": "prometheus"})
            text = prom["prometheus"]
            assert "# TYPE repro_request_seconds histogram" in text
            assert 'repro_request_seconds_bucket{le="+Inf"' in text
            # One analyze + two metrics requests were admitted by now.
            assert "repro_service_requests_total 3" in text
            await service.stop()

        run(scenario())

    def test_traced_bodies_never_enter_the_hot_key_memo(self):
        async def scenario():
            service = await make_service()
            ok = {"status": "ok", "op": "analyze", "key": "k" * 64}
            service.remember_key(b"plain-body", {"op": "analyze"}, ok)
            assert service._hot_keys.get(b"plain-body") is not None
            service.remember_key(
                b"traced-body", {"op": "analyze", "trace": True}, ok
            )
            assert service._hot_keys.get(b"traced-body") is None
            await service.stop()

        run(scenario())


# ---------------------------------------------------------------------------
# Wire protocol (one TCP server)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def server():
    with _ServerHarness(ServiceConfig(jobs=1)) as harness:
        yield harness


class TestServerWire:
    def test_trace_roundtrips_over_tcp(self, server):
        with ServiceClient(port=server.port, timeout=120) as client:
            response = client.analyze(FMA_SOURCE, trace=True)
            assert response["report"]["ok"]
            assert len(response["trace"]["id"]) == 16
            assert "cache.lookup" in span_names(response)

    def test_pipelined_traced_duplicates_cost_one_inference(self, server):
        with PipelinedClient(port=server.port, timeout=120) as client:
            first = client.submit(
                {"op": "analyze", "source": HORNER_SOURCE, "trace": True}
            )
            second = client.submit(
                {"op": "analyze", "source": HORNER_SOURCE, "trace": True}
            )
            one, two = client.collect([first, second])
            assert one["status"] == "ok" and two["status"] == "ok"
            assert one["trace"]["id"] != two["trace"]["id"]
            stats = client.stats()
        assert stats["service"]["inferences"] >= 1
        rider = two if (two["coalesced"] or two["cached"]) else one
        if rider["coalesced"]:
            # The rider shares the one inference's phase breakdown.
            assert engine_spans(rider) == engine_spans(
                one if rider is two else two
            )
        else:
            lookup = next(
                span
                for span in rider["trace"]["spans"]
                if span["name"] == "cache.lookup"
            )
            assert lookup["tier"] in ("memory", "hot")

    def test_metrics_over_tcp_with_prometheus_format(self, server):
        with ServiceClient(port=server.port, timeout=120) as client:
            response = client.metrics(format="prometheus")
        assert "metrics" in response
        assert "# TYPE repro_request_seconds histogram" in response["prometheus"]


# ---------------------------------------------------------------------------
# Cluster: router-hop tracing and worker-labeled metric aggregation
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def cluster2():
    with _RouterHarness(2, ServiceConfig(queue_size=1024)) as harness:
        yield harness


class TestClusterObservability:
    def test_router_mints_id_and_prepends_its_span(self, cluster2):
        with ServiceClient(port=cluster2.port, timeout=120) as client:
            response = client.analyze(FMA_SOURCE, trace=True)
        trace = response["trace"]
        assert len(trace["id"]) == 16
        route = trace["spans"][0]
        assert route["name"] == "router.route"
        assert route["slot"] in (0, 1)
        names = span_names(response)
        assert "normalize" in names and "cache.lookup" in names

    def test_client_supplied_id_survives_router_and_worker(self, cluster2):
        with ServiceClient(port=cluster2.port, timeout=120) as client:
            response = client.analyze(
                FMA_SOURCE, trace="0123456789abcdef", no_cache=True
            )
        assert response["trace"]["id"] == "0123456789abcdef"
        assert response["trace"]["spans"][0]["name"] == "router.route"

    def test_pipelined_traced_requests_through_the_router(self, cluster2):
        with PipelinedClient(port=cluster2.port, timeout=120) as client:
            ids = [
                client.submit(
                    {"op": "analyze", "source": HORNER_SOURCE, "trace": True}
                )
                for _ in range(3)
            ]
            responses = client.collect(ids)
        for response in responses:
            assert response["status"] == "ok"
            assert response["trace"]["spans"][0]["name"] == "router.route"
        assert len({response["trace"]["id"] for response in responses}) == 3
        # All three route to one worker (same key), which ran the
        # inference at most once: non-cached responses share its spans.
        shared = {
            tuple(engine_spans(response))
            for response in responses
            if not response["cached"]
        }
        assert len(shared) <= 1

    def test_metrics_aggregate_with_per_worker_labels(self, cluster2):
        with ServiceClient(port=cluster2.port, timeout=120) as client:
            client.analyze(FMA_SOURCE)
            response = client.metrics(format="prometheus")
        assert response["router"]["metrics"]
        slots = {worker["slot"] for worker in response["workers"]}
        assert slots == {0, 1}
        for worker in response["workers"]:
            names = {metric["name"] for metric in worker["metrics"]["metrics"]}
            assert "repro_service_requests_total" in names
            assert "repro_request_seconds" in names
        text = response["prometheus"]
        assert 'worker="router"' in text
        assert 'worker="0"' in text and 'worker="1"' in text
        assert 'repro_request_seconds_bucket{le="+Inf"' in text
        assert "repro_router_requests_total" in text

    def test_router_stats_aggregate_worker_slow_logs(self, cluster2):
        # The harness config leaves the 1.0 s threshold: no slow entries
        # expected, but the aggregated key must be present and list-shaped.
        with ServiceClient(port=cluster2.port, timeout=120) as client:
            stats = client.stats()
        assert isinstance(stats["slow_requests"], list)
