"""Tests for the primitive-operation signature Σ and its RP instantiation."""

from fractions import Fraction

import pytest

from repro.core.errors import EvaluationError, SignatureError
from repro.core.signature import Operation, Signature, standard_signature
from repro.core.types import Arrow, Bang, NUM, TensorProduct, WithProduct


@pytest.fixture(scope="module")
def sig() -> Signature:
    return standard_signature()


class TestRegistry:
    def test_contains_the_paper_operations(self, sig):
        for name in ("add", "mul", "div", "sqrt", "is_pos"):
            assert name in sig

    def test_lookup_unknown_raises(self, sig):
        with pytest.raises(SignatureError):
            sig.lookup("sin")

    def test_duplicate_registration_rejected(self, sig):
        with pytest.raises(SignatureError):
            sig.register(sig.lookup("add"))

    def test_extended_returns_a_new_signature(self, sig):
        extra = Operation("triple", NUM, NUM, lambda x: 3 * Fraction(x))
        bigger = sig.extended(extra)
        assert "triple" in bigger
        assert "triple" not in sig

    def test_arrow_type(self, sig):
        assert sig.lookup("add").arrow_type == Arrow(WithProduct(NUM, NUM), NUM)


class TestOperationTypes:
    def test_add_uses_with_product(self, sig):
        assert sig.lookup("add").input_type == WithProduct(NUM, NUM)

    def test_mul_and_div_use_tensor_product(self, sig):
        assert sig.lookup("mul").input_type == TensorProduct(NUM, NUM)
        assert sig.lookup("div").input_type == TensorProduct(NUM, NUM)

    def test_sqrt_is_half_sensitive(self, sig):
        sqrt_type = sig.lookup("sqrt").input_type
        assert isinstance(sqrt_type, Bang)
        assert sqrt_type.sensitivity == Fraction(1, 2)

    def test_comparisons_are_infinitely_sensitive(self, sig):
        assert sig.lookup("is_pos").input_type.sensitivity.is_infinite
        assert sig.lookup("gt").input_type.sensitivity.is_infinite


class TestSemantics:
    def test_add(self, sig):
        assert sig.lookup("add").apply((Fraction(1, 3), Fraction(1, 6))) == Fraction(1, 2)

    def test_mul(self, sig):
        assert sig.lookup("mul").apply((Fraction(2, 3), Fraction(3, 4))) == Fraction(1, 2)

    def test_div(self, sig):
        assert sig.lookup("div").apply((Fraction(1), Fraction(3))) == Fraction(1, 3)

    def test_div_by_zero(self, sig):
        with pytest.raises(EvaluationError):
            sig.lookup("div").apply((Fraction(1), Fraction(0)))

    def test_sqrt_exact_square(self, sig):
        assert sig.lookup("sqrt").apply(Fraction(9, 4)) == Fraction(3, 2)

    def test_sqrt_inexact_is_close(self, sig):
        result = sig.lookup("sqrt").apply(Fraction(2))
        assert abs(result * result - 2) < Fraction(1, 2**200)

    def test_sqrt_negative_raises(self, sig):
        with pytest.raises(EvaluationError):
            sig.lookup("sqrt").apply(Fraction(-1))

    def test_is_pos(self, sig):
        assert sig.lookup("is_pos").apply(Fraction(1)) is True
        assert sig.lookup("is_pos").apply(Fraction(-1)) is False

    def test_comparisons(self, sig):
        assert sig.lookup("gt").apply((Fraction(2), Fraction(1))) is True
        assert sig.lookup("lt").apply((Fraction(2), Fraction(1))) is False
        assert sig.lookup("geq").apply((Fraction(2), Fraction(2))) is True
