"""Tests for the perf subsystem (families, reference engine, harness, gate)."""

import json
import os

import pytest

from repro.benchsuite.large import (
    conditional_ladder_benchmark,
    conditional_ladder_term,
    mixed_chain_benchmark,
    mixed_chain_expression,
)
from repro.core import types as T
from repro.core.ast import term_size
from repro.core.inference import infer
from repro.perf.bench import (
    compare_with_baseline,
    load_report,
    render_report,
    run_suite,
    write_report,
)
from repro.perf.families import FAMILIES, build_family, parameter_for_nodes
from repro.perf.reference import call_with_deep_stack, reference_infer


class TestFamilies:
    def test_registry_names(self):
        assert {
            "serial_sum",
            "horner",
            "dot_product",
            "conditional_ladder",
            "mixed_chain",
            "dag_fanout",
            "dag_cascade",
        } == set(FAMILIES)

    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_families_scale_linearly(self, name):
        _, _, small, _ = build_family(name, 16)
        _, _, large, _ = build_family(name, 64)
        assert large > small
        density_small = small / 16
        density_large = large / 64
        assert density_large == pytest.approx(density_small, rel=0.25)

    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_parameter_for_nodes_hits_target(self, name):
        parameter = parameter_for_nodes(name, 2_000)
        _, _, nodes, _ = build_family(name, parameter)
        assert 1_500 <= nodes <= 2_500

    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_families_infer(self, name):
        term, skeleton, _, _ = build_family(name, 12)
        result = infer(term, skeleton)
        assert isinstance(result.type, T.Monadic)

    @pytest.mark.parametrize("name", ["dag_fanout", "dag_cascade"])
    def test_dag_families_share_subterms(self, name):
        _, _, tree, dag = build_family(name, 32)
        assert dag * 3 < tree  # heavy sharing is the family's whole point

    @pytest.mark.parametrize(
        "name", ["serial_sum", "dot_product", "conditional_ladder"]
    )
    def test_spine_families_report_matching_counts(self, name):
        # Sharing-free shapes: tree and DAG counts agree (up to leaf
        # collapse of repeated constants/variables).
        _, _, tree, dag = build_family(name, 32)
        assert dag <= tree <= dag * 1.2

    def test_conditional_ladder_structure(self):
        term, skeleton = conditional_ladder_term(10)
        assert term_size(term) == 4 * 10 + 2
        assert sum(1 for name in skeleton if name.startswith("b")) == 10

    def test_mixed_chain_alternates(self):
        from repro.frontend import expr as E

        expression = mixed_chain_expression(4)
        kinds = set()
        stack = [expression]
        while stack:
            node = stack.pop()
            kinds.add(type(node).__name__)
            for attr in ("left", "right"):
                child = getattr(node, attr, None)
                if child is not None:
                    stack.append(child)
        assert {"Add", "Mul"} <= kinds


class TestReferenceEngine:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_agrees_with_iterative_engine(self, name):
        term, skeleton, _, _ = build_family(name, 20)
        result = infer(term, skeleton)
        reference_ctx, reference_ty = reference_infer(term, skeleton)
        assert result.type == reference_ty
        assert result.context.as_dict() == reference_ctx.as_dict()

    def test_call_with_deep_stack_runs_deep(self):
        def deep(n: int) -> int:
            return 0 if n == 0 else deep(n - 1) + 1

        assert call_with_deep_stack(lambda: deep(50_000), 60_000) == 50_000

    def test_call_with_deep_stack_propagates_errors(self):
        def boom() -> None:
            raise ValueError("inner failure")

        with pytest.raises(ValueError, match="inner failure"):
            call_with_deep_stack(boom, 10_000)


class TestHarness:
    @pytest.fixture(scope="class")
    def tiny_report(self):
        # One small family, tiny sizes: fast enough for every CI run.
        return run_suite(
            quick=True, include_legacy=True, families=["serial_sum"], sizes=[300]
        )

    def test_report_shape(self, tiny_report):
        assert tiny_report["suite"] == "repro-perf"
        names = [entry["name"] for entry in tiny_report["benchmarks"]]
        assert "infer/serial_sum/300" in names
        assert "grade/ring_ops" in names
        assert "context/wide_merge" in names
        assert "exactmath/rp_enclosure" in names
        for entry in tiny_report["benchmarks"]:
            assert entry["seconds"] > 0

    def test_legacy_speedups_recorded(self, tiny_report):
        inference_rows = [
            entry
            for entry in tiny_report["benchmarks"]
            if entry["category"] == "inference"
        ]
        assert inference_rows
        for entry in inference_rows:
            assert entry["legacy_seconds"] is not None
            assert entry["speedup"] == pytest.approx(
                entry["legacy_seconds"] / entry["seconds"]
            )

    def test_write_and_load_round_trip(self, tiny_report, tmp_path):
        path = write_report(tiny_report, str(tmp_path / "bench.json"))
        assert load_report(path) == json.loads(json.dumps(tiny_report))

    def test_render_mentions_every_benchmark(self, tiny_report):
        rendered = render_report(tiny_report)
        for entry in tiny_report["benchmarks"]:
            assert entry["name"] in rendered

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown inference families"):
            run_suite(families=["no_such_family"], sizes=[100])

    def test_dag_and_incremental_rows(self):
        report = run_suite(quick=True, include_legacy=False, sizes=[400])
        by_name = {entry["name"]: entry for entry in report["benchmarks"]}

        fanout = by_name["infer/dag_fanout/400"]
        assert fanout["dag_nodes"] < fanout["tree_nodes"] == fanout["nodes"]
        assert fanout["nomemo_seconds"] > 0
        assert fanout["memo_speedup"] == pytest.approx(
            fanout["nomemo_seconds"] / fanout["seconds"]
        )
        assert fanout["memo_hits"] > 0
        assert 0 < fanout["memo_hit_rate"] <= 1

        spine = by_name["infer/serial_sum/400"]
        assert spine["tree_nodes"] == spine["dag_nodes"] == spine["nodes"]
        assert "nomemo_seconds" not in spine  # sharing-free: nothing to compare

        replay = by_name["incremental/edit_replay/400"]
        assert replay["category"] == "incremental"
        assert replay["edits"] > 0
        assert replay["full_seconds"] > 0 and replay["cold_seconds"] > 0
        assert 0 < replay["memo_hit_rate"] <= 1
        assert replay["speedup"] == pytest.approx(
            replay["full_seconds"] / replay["seconds"]
        )

    def test_explicit_family_selection_skips_edit_replay(self):
        report = run_suite(
            quick=True, include_legacy=False, families=["serial_sum"], sizes=[200]
        )
        names = [entry["name"] for entry in report["benchmarks"]]
        assert not any(name.startswith("incremental/") for name in names)


class TestBaselineGate:
    def _report(self, target_seconds, anchors=(0.02, 0.03, 0.04)):
        # A handful of stable anchor benchmarks plus one benchmark of
        # interest, mirroring a real suite run.
        benchmarks = [
            {"name": f"anchor/{index}", "seconds": seconds}
            for index, seconds in enumerate(anchors)
        ]
        benchmarks.append({"name": "infer/serial_sum/300", "seconds": target_seconds})
        return {"benchmarks": benchmarks}

    def test_passes_within_ratio(self):
        ok, _ = compare_with_baseline(self._report(0.02), self._report(0.01), 3.0)
        assert ok

    def test_fails_beyond_ratio(self):
        ok, lines = compare_with_baseline(self._report(0.05), self._report(0.01), 3.0)
        assert not ok
        assert any("REGRESSED" in line for line in lines)

    def test_uniformly_slower_host_passes(self):
        # A CI runner 4x slower than the baseline machine shifts every
        # benchmark equally; the host-normalized gate must not fire.
        current = {
            "benchmarks": [
                {"name": entry["name"], "seconds": entry["seconds"] * 4}
                for entry in self._report(0.01)["benchmarks"]
            ]
        }
        ok, lines = compare_with_baseline(current, self._report(0.01), 3.0)
        assert ok, lines

    def test_faster_host_does_not_tighten_gate(self):
        # On a 10x faster machine a benchmark 2x over baseline is still ok.
        current = {
            "benchmarks": [
                {"name": entry["name"], "seconds": entry["seconds"] / 10}
                for entry in self._report(0.01)["benchmarks"][:-1]
            ]
            + [{"name": "infer/serial_sum/300", "seconds": 0.02}]
        }
        ok, lines = compare_with_baseline(current, self._report(0.01), 3.0)
        assert ok, lines

    def test_noise_floor_never_fails(self):
        # Microsecond-scale jitter on loaded CI machines must not fail CI.
        ok, _ = compare_with_baseline(self._report(0.004), self._report(0.0001), 3.0)
        assert ok

    def test_new_benchmarks_are_informational(self):
        ok, lines = compare_with_baseline(self._report(10.0), {"benchmarks": []}, 3.0)
        assert ok
        assert any("no baseline" in line for line in lines)


@pytest.mark.slow
class TestAtScale:
    def test_conditional_ladder_benchmark_50k_nodes(self):
        benchmark = conditional_ladder_benchmark(12_500)
        analysis = benchmark.analyze_lnum()
        assert str(analysis.result_type) == "M[0]num"

    def test_mixed_chain_benchmark_50k_nodes(self):
        benchmark = mixed_chain_benchmark(6_250)
        analysis = benchmark.analyze_lnum()
        assert analysis.error_grade is not None
