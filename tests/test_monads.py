"""Tests for the graded neighborhood monad and its Section 7 extensions."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.grades import EPS, INFINITY
from repro.metrics import ABS_METRIC, RP_METRIC
from repro.monads import (
    EXCEPTIONAL,
    BestCaseProbabilisticMonad,
    ExceptionalNeighborhoodMonad,
    ExpectedProbabilisticMonad,
    MayNondeterministicMonad,
    MustNondeterministicMonad,
    NeighborhoodMonad,
    StateMonad,
    WorstCaseProbabilisticMonad,
    point_distribution,
    stochastic_rounding_distribution,
    uniform_distribution,
)

positive = st.fractions(min_value=Fraction(1, 100), max_value=Fraction(100)).filter(lambda q: q > 0)
small = st.fractions(min_value=Fraction(-10), max_value=Fraction(10))


class TestNeighborhoodMonad:
    monad = NeighborhoodMonad(ABS_METRIC)

    def test_unit_lands_in_grade_zero(self):
        assert self.monad.contains(self.monad.unit(Fraction(3)), 0)

    def test_carrier_respects_grade(self):
        assert self.monad.contains((Fraction(1), Fraction(2)), 1)
        assert not self.monad.contains((Fraction(1), Fraction(3)), 1)

    def test_infinite_grade_accepts_everything(self):
        assert self.monad.contains((Fraction(0), Fraction(10**9)), INFINITY)

    def test_multiplication_projects_outer_ideal_and_inner_approx(self):
        nested = ((Fraction(1), Fraction(2)), (Fraction(3), Fraction(4)))
        assert self.monad.multiplication(nested) == (Fraction(1), Fraction(4))

    @given(x=small, y=small, q=small, r=small)
    @settings(max_examples=40, deadline=None)
    def test_multiplication_grade_adds(self, x, y, q, r):
        # (x, y) in T_q and (x', y') in T_r with d(x, x') <= q  => result in T_{q+r}.
        q, r = abs(q), abs(r)
        inner_1 = (x, x + q)       # within q of itself? d = q
        inner_2 = (x + q, x + q + r)
        assert self.monad.contains(inner_1, q)
        assert self.monad.contains(inner_2, r)
        result = self.monad.multiplication((inner_1, inner_2))
        assert self.monad.contains(result, q + r)

    def test_map_applies_componentwise(self):
        pair = (Fraction(1), Fraction(2))
        assert self.monad.map(lambda v: v * 10, pair) == (Fraction(10), Fraction(20))

    def test_map_of_non_expansive_function_preserves_grade(self):
        pair = (Fraction(1), Fraction(2))
        mapped = self.monad.map(lambda v: v + 5, pair)
        assert self.monad.contains(mapped, 1)

    def test_subgrade_coercion(self):
        pair = (Fraction(1), Fraction(1))
        assert self.monad.subgrade(pair, 0, 1) == pair
        with pytest.raises(ValueError):
            self.monad.subgrade(pair, 1, 0)

    def test_strength(self):
        assert self.monad.strength("a", (1, 2)) == (("a", 1), ("a", 2))

    def test_distributive_law(self):
        pair = (Fraction(1), Fraction(2))
        assert self.monad.distributive(pair, 3, 1) == pair

    def test_left_unit_law(self):
        # μ ∘ η_T = id : T_r -> T_r
        pair = (Fraction(1), Fraction(2))
        assert self.monad.multiplication((self.monad.unit(pair[0]), pair)) == pair

    def test_right_unit_law(self):
        # μ ∘ T η = id (map the unit inside, then flatten).
        pair = (Fraction(1), Fraction(2))
        nested = self.monad.map(self.monad.unit, pair)
        assert self.monad.multiplication(nested) == pair

    def test_associativity_law(self):
        level3 = (((1, 2), (3, 4)), ((5, 6), (7, 8)))
        flatten_outer_first = self.monad.multiplication(
            (self.monad.multiplication(level3[0]), self.monad.multiplication(level3[1]))
        )
        mapped_inner = self.monad.map(self.monad.multiplication, level3)
        flatten_inner_first = self.monad.multiplication(mapped_inner)
        assert flatten_outer_first == flatten_inner_first

    def test_bind_models_pow4(self):
        monad = NeighborhoodMonad(RP_METRIC)
        rp = RP_METRIC

        def pow2_rounded(value: Fraction):
            from repro.floats.rounding import RoundingMode, round_to_precision

            exact = value * value
            return (exact, round_to_precision(exact, 53, RoundingMode.TOWARD_POSITIVE))

        start = Fraction(3, 7)
        first = pow2_rounded(start)
        result = monad.bind(first, pow2_rounded)
        # Grade bound 3*eps from the paper's Section 2.3 diagram.
        assert monad.grade_of(result) <= 3 * Fraction(1, 2**52)

    def test_grade_of_requires_finite_distance(self):
        monad = NeighborhoodMonad(RP_METRIC)
        with pytest.raises(ValueError):
            monad.grade_of((Fraction(1), Fraction(-1)))


class TestExceptionalMonad:
    monad = ExceptionalNeighborhoodMonad(ABS_METRIC)

    def test_exceptional_is_always_in_the_carrier(self):
        assert self.monad.contains((Fraction(1), EXCEPTIONAL), 0)

    def test_normal_pairs_respect_grade(self):
        assert self.monad.contains((Fraction(1), Fraction(2)), 1)
        assert not self.monad.contains((Fraction(1), Fraction(5)), 1)

    def test_map_preserves_exception(self):
        assert self.monad.map(lambda v: v + 1, (Fraction(1), EXCEPTIONAL)) == (
            Fraction(2),
            EXCEPTIONAL,
        )

    def test_multiplication_propagates_exception(self):
        assert self.monad.multiplication(((Fraction(1), Fraction(2)), EXCEPTIONAL)) == (
            Fraction(1),
            EXCEPTIONAL,
        )

    def test_bind_propagates_exception(self):
        result = self.monad.bind(
            (Fraction(1), EXCEPTIONAL), lambda v: (v * 2, v * 2 + Fraction(1, 4))
        )
        assert result == (Fraction(2), EXCEPTIONAL)

    def test_bind_without_exception(self):
        result = self.monad.bind(
            (Fraction(1), Fraction(2)), lambda v: (v, v + Fraction(1, 2))
        )
        assert result == (Fraction(1), Fraction(5, 2))

    def test_distance_to_exceptional_is_zero(self):
        assert self.monad.distance((Fraction(1), EXCEPTIONAL), (Fraction(9), Fraction(9)))[1] == 0


class TestNondeterministicMonads:
    must = MustNondeterministicMonad(ABS_METRIC)
    may = MayNondeterministicMonad(ABS_METRIC)

    def test_unit(self):
        element = self.must.unit(Fraction(2))
        assert element == (Fraction(2), frozenset({Fraction(2)}))
        assert self.must.contains(element, 0)

    def test_must_requires_all_outcomes_close(self):
        element = (Fraction(0), frozenset({Fraction(1), Fraction(5)}))
        assert not self.must.contains(element, 2)
        assert self.must.contains(element, 5)

    def test_may_requires_one_outcome_close(self):
        element = (Fraction(0), frozenset({Fraction(1), Fraction(5)}))
        assert self.may.contains(element, 2)
        assert not self.may.contains(element, Fraction(1, 2))

    def test_multiplication_unions_candidates(self):
        inner_a = (Fraction(1), frozenset({Fraction(1), Fraction(2)}))
        inner_b = (Fraction(2), frozenset({Fraction(3)}))
        outer = ((Fraction(1), frozenset({Fraction(1)})), frozenset({inner_a, inner_b}))
        ideal, candidates = self.must.multiplication(outer)
        assert ideal == Fraction(1)
        assert candidates == {Fraction(1), Fraction(2), Fraction(3)}

    def test_bind_grade_composition(self):
        # Ties resolved non-deterministically: both neighbours are possible.
        element = (Fraction(0), frozenset({Fraction(0), Fraction(1)}))

        def step(value):
            return (value, frozenset({value, value + 1}))

        result = self.must.bind(element, step)
        assert self.must.contains(result, 2)
        assert not self.must.contains(result, 1)

    def test_map(self):
        element = (Fraction(1), frozenset({Fraction(1), Fraction(2)}))
        mapped = self.may.map(lambda v: v * 2, element)
        assert mapped == (Fraction(2), frozenset({Fraction(2), Fraction(4)}))


class TestStateMonad:
    monad = StateMonad(ABS_METRIC, states=["RU", "RD"])

    def test_unit_ignores_state(self):
        element = self.monad.unit(Fraction(1))
        assert self.monad.run(element, "RU") == ("RU", Fraction(1))
        assert self.monad.contains(element, 0)

    def test_contains_quantifies_over_all_states(self):
        element = (
            Fraction(0),
            lambda state: (state, Fraction(1) if state == "RU" else Fraction(3)),
        )
        assert self.monad.contains(element, 3)
        assert not self.monad.contains(element, 2)

    def test_bind_threads_state(self):
        counter = (Fraction(0), lambda state: (state + 1, Fraction(0)))

        def add_state_dependent(value):
            return (value, lambda state: (state, value + state))

        monad = StateMonad(ABS_METRIC, states=[0, 1, 2])
        result = monad.bind(counter, add_state_dependent)
        final_state, final_value = monad.run(result, 0)
        assert final_state == 1
        assert final_value == Fraction(1)

    def test_map(self):
        element = self.monad.unit(Fraction(2))
        mapped = self.monad.map(lambda v: v * 3, element)
        assert self.monad.run(mapped, "RD")[1] == Fraction(6)


class TestProbabilisticMonads:
    worst = WorstCaseProbabilisticMonad(ABS_METRIC)
    best = BestCaseProbabilisticMonad(ABS_METRIC)
    expected = ExpectedProbabilisticMonad(ABS_METRIC)

    def test_point_distribution_is_grade_zero(self):
        element = self.worst.unit(Fraction(1))
        assert self.worst.contains(element, 0)
        assert self.expected.contains(element, 0)

    def test_worst_case_needs_all_outcomes(self):
        element = (Fraction(0), {Fraction(1): Fraction(1, 2), Fraction(3): Fraction(1, 2)})
        assert not self.worst.contains(element, 2)
        assert self.worst.contains(element, 3)

    def test_best_case_needs_one_outcome(self):
        element = (Fraction(0), {Fraction(1): Fraction(1, 2), Fraction(3): Fraction(1, 2)})
        assert self.best.contains(element, 1)

    def test_expected_distance_is_the_mean(self):
        element = (Fraction(0), {Fraction(1): Fraction(1, 2), Fraction(3): Fraction(1, 2)})
        assert self.expected.expected_distance(element) == Fraction(2)
        assert self.expected.contains(element, 2)
        assert not self.expected.contains(element, Fraction(3, 2))

    def test_uniform_distribution_normalises(self):
        distribution = uniform_distribution([1, 1, 2, 3])
        assert sum(distribution.values()) == 1
        assert distribution[1] == Fraction(1, 2)

    def test_stochastic_rounding_is_unbiased(self):
        value = Fraction(1, 10)
        distribution = stochastic_rounding_distribution(value, precision=53)
        mean = sum(outcome * p for outcome, p in distribution.items())
        assert mean == value
        assert len(distribution) == 2

    def test_stochastic_rounding_of_representable_value(self):
        value = Fraction(1, 2)
        assert stochastic_rounding_distribution(value) == point_distribution(value)

    def test_stochastic_rounding_expected_grade(self):
        value = Fraction(1, 10)
        element = (value, stochastic_rounding_distribution(value))
        # Every outcome is within one ulp, so the expected distance is too.
        from repro.floats.ulp import ulp

        assert self.expected.contains(element, ulp(value))
        assert self.worst.contains(element, ulp(value))

    def test_map_pushes_distribution_forward(self):
        element = (Fraction(1), uniform_distribution([Fraction(1), Fraction(2)]))
        mapped = self.expected.map(lambda v: v * 2, element)
        assert mapped[1] == {Fraction(2): Fraction(1, 2), Fraction(4): Fraction(1, 2)}

    def test_bind_composes_expected_grades(self):
        element = (Fraction(0), {Fraction(0): Fraction(1, 2), Fraction(2): Fraction(1, 2)})

        def noisy_increment(value):
            return (value + 1, {value + 1: Fraction(1, 2), value + 2: Fraction(1, 2)})

        result = self.expected.bind(element, noisy_increment)
        assert result[0] == Fraction(1)
        assert sum(result[1].values()) == 1
        # element has expected distance 1; noisy_increment adds expected 1/2
        # relative to its own ideal; 1-sensitivity composes to 3/2.
        assert self.expected.expected_distance(result) <= Fraction(3, 2)
