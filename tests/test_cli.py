"""Tests for the command-line interface (``python -m repro``)."""

import os

import pytest

from repro.cli import main

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples", "programs")

FMA_SOURCE = """
function FMA (x: num) (y: num) (z: num) : M[eps]num {
  a = mul (x, y);
  b = add (|a, z|);
  rnd b
}
"""


@pytest.fixture()
def fma_file(tmp_path):
    path = tmp_path / "fma.lnum"
    path.write_text(FMA_SOURCE)
    return str(path)


class TestCheckCommand:
    def test_check_prints_grades(self, fma_file, capsys):
        assert main(["check", fma_file]) == 0
        output = capsys.readouterr().out
        assert "FMA" in output and "eps" in output and "relative error" in output

    def test_check_single_function(self, fma_file, capsys):
        assert main(["check", fma_file, "-f", "FMA"]) == 0
        assert "FMA" in capsys.readouterr().out

    def test_check_unknown_function(self, fma_file):
        with pytest.raises(SystemExit):
            main(["check", fma_file, "-f", "nope"])

    def test_check_example_program(self, capsys):
        path = os.path.join(EXAMPLES, "horner2.lnum")
        assert main(["check", path]) == 0
        output = capsys.readouterr().out
        assert "Horner2" in output and "2*eps" in output

    def test_check_conditional_example(self, capsys):
        path = os.path.join(EXAMPLES, "pythagorean_sum.lnum")
        assert main(["check", path]) == 0
        output = capsys.readouterr().out
        assert "4*eps" in output

    def test_annotation_violation_sets_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.lnum"
        path.write_text("function f (x: num) : M[0]num { rnd x }\n")
        assert main(["check", str(path)]) == 1

    def test_parse_error_is_reported(self, tmp_path, capsys):
        path = tmp_path / "broken.lnum"
        path.write_text("function f (x num { rnd x }")
        assert main(["check", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["check", "/does/not/exist.lnum"]) == 2

    def test_stdin_input(self, fma_file, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(FMA_SOURCE))
        assert main(["check", "-"]) == 0

    def test_binary32_instantiation_scales_the_bound(self, tmp_path, capsys):
        # The program carries no annotation, so only the instantiation changes.
        path = tmp_path / "plain.lnum"
        path.write_text("function f (x: num) (y: num) { a = mul (x, y); rnd a }\n")
        assert main(["check", str(path), "--format", "binary32"]) == 0
        output = capsys.readouterr().out
        assert "1.192e-07" in output or "1.19e-07" in output


class TestFpcoreCommand:
    def test_fpcore_example(self, capsys):
        path = os.path.join(EXAMPLES, "hypot.fpcore")
        assert main(["fpcore", path]) == 0
        output = capsys.readouterr().out
        assert "hypot" in output and "5/2*eps" in output


class TestTableCommand:
    def test_table1(self, capsys):
        assert main(["table", "table1"]) == 0
        assert "binary64" in capsys.readouterr().out

    def test_table5(self, capsys):
        assert main(["table", "table5"]) == 0
        output = capsys.readouterr().out
        assert "squareRoot3" in output


class TestValidateCommand:
    def test_validate_function(self, fma_file, capsys):
        code = main(
            ["validate", fma_file, "-f", "FMA", "-i", "x=0.1", "-i", "y=0.2", "-i", "z=0.3"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "bound holds      : True" in output

    def test_validate_requires_all_inputs(self, fma_file):
        with pytest.raises(SystemExit):
            main(["validate", fma_file, "-f", "FMA", "-i", "x=0.1"])

    def test_validate_bad_assignment(self, fma_file):
        with pytest.raises(SystemExit):
            main(["validate", fma_file, "-f", "FMA", "-i", "x:1"])

    def test_validate_bare_expression(self, tmp_path, capsys):
        path = tmp_path / "expr.lnum"
        path.write_text("s = mul (x, x); rnd s\n")
        assert main(["validate", str(path), "-i", "x=0.7"]) == 0
