"""Tests for the command-line interface (``python -m repro``)."""

import os

import pytest

from repro.cli import main

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples", "programs")

FMA_SOURCE = """
function FMA (x: num) (y: num) (z: num) : M[eps]num {
  a = mul (x, y);
  b = add (|a, z|);
  rnd b
}
"""


@pytest.fixture()
def fma_file(tmp_path):
    path = tmp_path / "fma.lnum"
    path.write_text(FMA_SOURCE)
    return str(path)


class TestCheckCommand:
    def test_check_prints_grades(self, fma_file, capsys):
        assert main(["check", fma_file]) == 0
        output = capsys.readouterr().out
        assert "FMA" in output and "eps" in output and "relative error" in output

    def test_check_single_function(self, fma_file, capsys):
        assert main(["check", fma_file, "-f", "FMA"]) == 0
        assert "FMA" in capsys.readouterr().out

    def test_check_unknown_function(self, fma_file):
        with pytest.raises(SystemExit):
            main(["check", fma_file, "-f", "nope"])

    def test_check_example_program(self, capsys):
        path = os.path.join(EXAMPLES, "horner2.lnum")
        assert main(["check", path]) == 0
        output = capsys.readouterr().out
        assert "Horner2" in output and "2*eps" in output

    def test_check_conditional_example(self, capsys):
        path = os.path.join(EXAMPLES, "pythagorean_sum.lnum")
        assert main(["check", path]) == 0
        output = capsys.readouterr().out
        assert "4*eps" in output

    def test_annotation_violation_sets_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.lnum"
        path.write_text("function f (x: num) : M[0]num { rnd x }\n")
        assert main(["check", str(path)]) == 1

    def test_parse_error_is_reported(self, tmp_path, capsys):
        path = tmp_path / "broken.lnum"
        path.write_text("function f (x num { rnd x }")
        assert main(["check", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["check", "/does/not/exist.lnum"]) == 2

    def test_stdin_input(self, fma_file, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(FMA_SOURCE))
        assert main(["check", "-"]) == 0

    def test_binary32_instantiation_scales_the_bound(self, tmp_path, capsys):
        # The program carries no annotation, so only the instantiation changes.
        path = tmp_path / "plain.lnum"
        path.write_text("function f (x: num) (y: num) { a = mul (x, y); rnd a }\n")
        assert main(["check", str(path), "--format", "binary32"]) == 0
        output = capsys.readouterr().out
        assert "1.192e-07" in output or "1.19e-07" in output


class TestFpcoreCommand:
    def test_fpcore_example(self, capsys):
        path = os.path.join(EXAMPLES, "hypot.fpcore")
        assert main(["fpcore", path]) == 0
        output = capsys.readouterr().out
        assert "hypot" in output and "5/2*eps" in output


class TestTableCommand:
    def test_table1(self, capsys):
        assert main(["table", "table1"]) == 0
        assert "binary64" in capsys.readouterr().out

    def test_table5(self, capsys):
        assert main(["table", "table5"]) == 0
        output = capsys.readouterr().out
        assert "squareRoot3" in output


class TestErrorPaths:
    def test_unknown_command(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["frobnicate"])
        assert info.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_no_command(self, capsys):
        with pytest.raises(SystemExit) as info:
            main([])
        assert info.value.code == 2

    def test_unreadable_source_is_exit_code_2(self, tmp_path, capsys):
        # A directory path opens with an OSError that is not FileNotFoundError.
        assert main(["check", str(tmp_path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_exit_code(self, capsys):
        assert main(["check", "/does/not/exist.lnum"]) == 2
        assert main(["fpcore", "/does/not/exist.fpcore"]) == 2
        assert main(["validate", "/does/not/exist.lnum"]) == 2
        capsys.readouterr()

    def test_malformed_input_assignments(self, fma_file):
        # No separator at all.
        with pytest.raises(SystemExit):
            main(["validate", fma_file, "-f", "FMA", "-i", "x0.1"])
        # Separator present but the value is not a rational.
        with pytest.raises(SystemExit):
            main(["validate", fma_file, "-f", "FMA", "-i", "x=abc"])
        # Division by zero inside a rational literal.
        with pytest.raises(SystemExit):
            main(["validate", fma_file, "-f", "FMA", "-i", "x=1/0"])

    def test_batch_failure_exit_code(self, tmp_path, capsys):
        broken = tmp_path / "broken.lnum"
        broken.write_text("function f (x num { rnd x }")
        assert main(["batch", str(broken), "--no-cache"]) == 2
        assert "failure" in capsys.readouterr().out

    def test_batch_annotation_violation_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.lnum"
        bad.write_text("function f (x: num) : M[0]num { rnd x }\n")
        assert main(["batch", str(bad), "--no-cache"]) == 1
        capsys.readouterr()


class TestVersionAndWiring:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_perf_is_a_real_subparser(self):
        # The perf flags parse through the main parser (no REMAINDER hack).
        from repro.cli import build_parser

        arguments = build_parser().parse_args(
            ["perf", "--quick", "--no-legacy", "--sizes", "100", "--out", "/tmp/x.json"]
        )
        assert arguments.command == "perf"
        assert arguments.quick and arguments.no_legacy
        assert arguments.sizes == "100"

    def test_serve_and_query_parse(self):
        from repro.cli import build_parser

        serve = build_parser().parse_args(["serve", "--port", "0", "--jobs", "2"])
        assert serve.command == "serve" and serve.jobs == 2
        query = build_parser().parse_args(["query", "p.lnum", "--priority", "bulk"])
        assert query.command == "query" and query.priority == "bulk"

    def test_query_requires_paths_or_stats(self):
        with pytest.raises(SystemExit):
            main(["query"])


class TestValidateCommand:
    def test_validate_function(self, fma_file, capsys):
        code = main(
            ["validate", fma_file, "-f", "FMA", "-i", "x=0.1", "-i", "y=0.2", "-i", "z=0.3"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "bound holds      : True" in output

    def test_validate_requires_all_inputs(self, fma_file):
        with pytest.raises(SystemExit):
            main(["validate", fma_file, "-f", "FMA", "-i", "x=0.1"])

    def test_validate_bad_assignment(self, fma_file):
        with pytest.raises(SystemExit):
            main(["validate", fma_file, "-f", "FMA", "-i", "x:1"])

    def test_validate_bare_expression(self, tmp_path, capsys):
        path = tmp_path / "expr.lnum"
        path.write_text("s = mul (x, x); rnd s\n")
        assert main(["validate", str(path), "-i", "x=0.7"]) == 0
