"""Smoke tests: every example script runs to completion and prints what it promises."""

import os
import subprocess
import sys

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(ROOT, "examples")
SRC = os.path.join(ROOT, "src")


def _run(script: str) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
        check=False,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
def test_quickstart_example():
    output = _run("quickstart.py")
    assert "binary64" in output
    assert "FMA" in output and "MA" in output
    assert "holds: True" in output


@pytest.mark.slow
def test_polynomial_evaluation_example():
    output = _run("polynomial_evaluation.py")
    assert "Horner" in output
    assert "bound holds        : True" in output or "bound holds" in output


@pytest.mark.slow
def test_conditionals_and_formats_example():
    output = _run("conditionals_and_formats.py")
    assert "PythagoreanSum" in output
    assert "err (overflow)" in output


@pytest.mark.slow
def test_stochastic_rounding_example():
    output = _run("stochastic_rounding.py")
    assert "Stochastic rounding" in output
    assert "unbiased" in output
