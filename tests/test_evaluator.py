"""Tests for the big-step evaluators (ideal and floating-point semantics)."""

from fractions import Fraction

import pytest

from repro.core import ast as A
from repro.core import types as T
from repro.core.errors import EvaluationError, FloatingPointExceptionError
from repro.core.parser import parse_term
from repro.core.semantics import (
    ErrV,
    InlV,
    InrV,
    MonadicV,
    NumV,
    build_environment,
    evaluate,
    fp_config,
    ideal_config,
    lift_input,
    run_both,
    run_monadic,
)
from repro.floats.rounding import RoundingMode, round_to_precision


def _env(**values):
    return {name: NumV(Fraction(value)) for name, value in values.items()}


class TestIdealSemantics:
    def test_constant(self):
        assert evaluate(A.Const("0.1")) == NumV(Fraction(1, 10))

    def test_operation(self):
        term = parse_term("mul (x, y)")
        assert evaluate(term, _env(x=3, y="0.5")) == NumV(Fraction(3, 2))

    def test_rnd_is_identity(self):
        term = parse_term("rnd x")
        value = evaluate(term, _env(x="0.1"), ideal_config())
        assert value == MonadicV(NumV(Fraction(1, 10)))

    def test_let_sequencing(self):
        term = parse_term("s = add (|x, y|); t = mul (s, s); t")
        assert evaluate(term, _env(x=1, y=2)) == NumV(Fraction(9))

    def test_application(self):
        term = parse_term("f = 2; add (|f, f|)")
        assert evaluate(term) == NumV(Fraction(4))

    def test_case_true_branch(self):
        term = parse_term("if is_pos x then ret x else ret 1")
        assert run_monadic(term, _env(x="0.5")) == Fraction(1, 2)

    def test_case_false_branch(self):
        term = parse_term("if gt (x, y) then ret x else ret y")
        assert run_monadic(term, _env(x=1, y=2)) == Fraction(2)

    def test_projections(self):
        term = A.Proj(2, A.WithPair(A.Const(1), A.Const(2)))
        assert evaluate(term) == NumV(Fraction(2))

    def test_unbound_variable(self):
        with pytest.raises(EvaluationError):
            evaluate(A.Var("missing"))

    def test_stuck_application(self):
        with pytest.raises(EvaluationError):
            evaluate(A.App(A.Const(1), A.Const(2)))


class TestFloatingPointSemantics:
    def test_rnd_rounds_up(self):
        term = parse_term("rnd x")
        value = run_monadic(term, _env(x="0.1"), fp_config())
        expected = round_to_precision(Fraction(1, 10), 53, RoundingMode.TOWARD_POSITIVE)
        assert value == expected
        assert value >= Fraction(1, 10)

    def test_representable_value_is_unchanged(self):
        term = parse_term("rnd x")
        assert run_monadic(term, _env(x="0.5"), fp_config()) == Fraction(1, 2)

    def test_operations_round_once(self):
        term = parse_term("s = add (|x, y|); rnd s")
        result = run_monadic(term, _env(x="0.1", y="0.2"), fp_config())
        exact = Fraction(3, 10)
        assert result != exact
        assert abs(result - exact) / exact <= Fraction(1, 2**52)

    def test_lower_precision_rounds_more(self):
        term = parse_term("rnd x")
        double = run_monadic(term, _env(x="0.1"), fp_config(precision=53))
        single = run_monadic(term, _env(x="0.1"), fp_config(precision=24))
        assert abs(single - Fraction(1, 10)) > abs(double - Fraction(1, 10))

    def test_run_both_pairs_the_semantics(self):
        term = parse_term("s = mul (x, x); rnd s")
        ideal, approx = run_both(term, _env(x="0.1"))
        assert ideal == Fraction(1, 100)
        assert approx >= ideal
        assert approx != ideal

    def test_round_to_nearest_mode(self):
        term = parse_term("rnd x")
        value = run_monadic(
            term, _env(x="0.1"), fp_config(rounding=RoundingMode.NEAREST_EVEN)
        )
        assert value == Fraction(float(0.1))


class TestExceptionalSemantics:
    def test_overflow_produces_err(self):
        term = parse_term("s = mul (x, x); rnd s")
        config = fp_config(exceptional=True)
        env = _env(x=Fraction(2) ** 600)
        value = evaluate(term, env, config)
        assert isinstance(value, ErrV)

    def test_err_propagates_through_let_bind(self):
        term = parse_term("s = mul (x, x); let t = rnd s; u = add (|t, 1|); rnd u")
        config = fp_config(exceptional=True)
        value = evaluate(term, _env(x=Fraction(2) ** 600), config)
        assert isinstance(value, ErrV)

    def test_run_monadic_raises_on_err(self):
        term = parse_term("s = mul (x, x); rnd s")
        with pytest.raises(FloatingPointExceptionError):
            run_monadic(term, _env(x=Fraction(2) ** 600), fp_config(exceptional=True))

    def test_no_exception_for_normal_values(self):
        term = parse_term("s = mul (x, x); rnd s")
        value = run_monadic(term, _env(x=3), fp_config(exceptional=True))
        assert value == Fraction(9)

    def test_underflow_to_zero_is_exceptional(self):
        term = parse_term("s = mul (x, y); rnd s")
        env = _env(x=Fraction(1, 2**600), y=Fraction(1, 2**600))
        config = fp_config(exceptional=True, rounding=RoundingMode.TOWARD_NEGATIVE)
        value = evaluate(term, env, config)
        assert isinstance(value, ErrV)


class TestInputLifting:
    def test_lift_plain_number(self):
        assert lift_input("0.5", T.NUM) == NumV(Fraction(1, 2))

    def test_lift_boxed(self):
        value = lift_input(2, T.Bang(2, T.NUM))
        assert value.value == NumV(Fraction(2))

    def test_lift_monadic(self):
        value = lift_input(2, T.Monadic(0, T.NUM))
        assert value == MonadicV(NumV(Fraction(2)))

    def test_lift_pairs(self):
        value = lift_input((1, 2), T.TensorProduct(T.NUM, T.NUM))
        assert value.left == NumV(Fraction(1))

    def test_lift_bool(self):
        assert lift_input(True, T.bool_type()) == InlV(A.UnitVal()) or isinstance(
            lift_input(True, T.bool_type()), InlV
        )

    def test_build_environment_checks_names(self):
        with pytest.raises(EvaluationError):
            build_environment({"zz": 1}, {"x": T.NUM})

    def test_build_environment(self):
        env = build_environment({"x": "0.25"}, {"x": T.NUM})
        assert env["x"] == NumV(Fraction(1, 4))
