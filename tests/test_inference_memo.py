"""DAG-memoized inference and incremental reanalysis.

Property tests: memoized inference (per-call auto memo, explicit shared
memo) must produce judgements identical to the fresh engine on randomized
terms with forced sharing, and incremental reanalysis after a random
single-site edit must match from-scratch analysis.  Plus unit coverage of
the memo bookkeeping itself (bounds, stats, free-variable cap opt-out).
"""

import random
from fractions import Fraction

import pytest

from repro.analysis.cache import memo_report
from repro.analysis.incremental import IncrementalAnalyzer
from repro.benchsuite.large import (
    balanced_rnd_tree_term,
    dag_cascade_term,
    dag_fanout_term,
    shared_block_term,
)
from repro.core import ast as A
from repro.core import types as T
from repro.core.grades import grade_memo_stats
from repro.core.inference import InferenceConfig, JudgementMemo, infer


def assert_same_judgement(left, right):
    assert left.type == right.type
    assert left.context.as_dict() == right.context.as_dict()


# ---------------------------------------------------------------------------
# Randomized terms with forced sharing
# ---------------------------------------------------------------------------


def random_shared_term(rng: random.Random, size: int = 12):
    """A random Λnum term that deliberately reuses subterm objects.

    Grows a pool of candidate computations (rounded ops over ``x``/``y``
    and earlier pool entries spliced through let-binds) and picks children
    *from the pool*, so the same object lands in several positions; after
    interning, those positions are pointer-identical shared subterms.
    """
    # ``monadic`` entries have type M[u]num (legal as let-bind values);
    # ``pool`` additionally holds pair shapes (legal as pair children).
    monadic = [A.Rnd(A.Var("x")), A.Rnd(A.Var("y")), A.Rnd(A.Const(Fraction(3, 7)))]
    pool = list(monadic)
    for index in range(size):
        kind = rng.randrange(4)
        if kind == 0:
            node = A.WithPair(rng.choice(pool), rng.choice(pool))
        elif kind == 1:
            node = A.TensorPair(rng.choice(pool), rng.choice(pool))
        elif kind == 2:
            node = A.LetBind(
                f"v{index}",
                rng.choice(monadic),
                A.Rnd(A.Op("add", A.WithPair(A.Var(f"v{index}"), A.Var("x")))),
            )
            monadic.append(node)
        else:
            node = A.LetBind(
                f"v{index}",
                rng.choice(monadic),
                A.LetBind(
                    f"w{index}",
                    rng.choice(monadic),
                    A.Rnd(
                        A.Op("mul", A.TensorPair(A.Var(f"v{index}"), A.Var(f"w{index}")))
                    ),
                ),
            )
            monadic.append(node)
        pool.append(node)
    # A final pair over two pool picks maximizes the chance of overlap.
    return A.intern_term(A.WithPair(rng.choice(pool), pool[-1]))


SKELETON = {"x": T.NUM, "y": T.NUM}


@pytest.mark.parametrize("seed", range(20))
def test_memoized_matches_fresh_on_random_shared_terms(seed):
    rng = random.Random(seed)
    term = random_shared_term(rng)
    fresh = infer(term, SKELETON, memo=False)
    auto = infer(term, SKELETON)  # per-call memo, auto-enabled on sharing
    shared = JudgementMemo()
    first = infer(term, SKELETON, memo=shared)
    second = infer(term, SKELETON, memo=shared)  # warm: pure reuse
    for result in (auto, first, second):
        assert_same_judgement(fresh, result)


@pytest.mark.parametrize("seed", range(10))
def test_shared_memo_agrees_across_different_terms(seed):
    # One memo serving many terms must never leak a judgement into the
    # wrong position: every term still matches its fresh analysis.
    rng = random.Random(1000 + seed)
    shared = JudgementMemo()
    for _ in range(5):
        term = random_shared_term(rng, size=8)
        assert_same_judgement(
            infer(term, SKELETON, memo=False), infer(term, SKELETON, memo=shared)
        )
    assert shared.hits > 0  # the pools overlap by construction


@pytest.mark.parametrize("builder", [dag_fanout_term, dag_cascade_term])
def test_dag_families_memoized_matches_fresh(builder):
    term, skeleton = builder(24)
    term = A.intern_term(term)
    assert A.dag_size(term) * 2 < A.tree_size(term)
    assert_same_judgement(infer(term, skeleton, memo=False), infer(term, skeleton))


def test_memo_respects_configuration():
    # Same term, different rnd grades: the config fingerprint in the key
    # must keep the judgements apart even in one shared memo.
    term, skeleton = dag_fanout_term(8)
    term = A.intern_term(term)
    shared = JudgementMemo()
    default = infer(term, skeleton, memo=shared)
    doubled_config = InferenceConfig().with_rnd_grade("2*eps")
    doubled = infer(term, skeleton, doubled_config, memo=shared)
    assert default.type != doubled.type
    assert_same_judgement(infer(term, skeleton, doubled_config, memo=False), doubled)


def test_memo_distinguishes_skeleton_types():
    # x : num vs x : !-typed — the skeleton slice is part of the key.
    term = A.intern_term(A.Rnd(A.Op("add", A.WithPair(A.Var("x"), A.Var("x")))))
    shared = JudgementMemo()
    as_num = infer(term, {"x": T.NUM}, memo=shared)
    with pytest.raises(Exception):
        infer(term, {"x": T.Bang(2, T.NUM)}, memo=shared)
    assert_same_judgement(infer(term, {"x": T.NUM}, memo=False), as_num)


# ---------------------------------------------------------------------------
# Incremental reanalysis
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(10))
def test_incremental_single_site_edit_matches_scratch(seed):
    rng = random.Random(2000 + seed)
    leaves = rng.choice([33, 64, 127])
    base, skeleton = balanced_rnd_tree_term(leaves)
    session = IncrementalAnalyzer()
    session.analyze_term(A.intern_term(base), skeleton)

    edit_leaf = rng.randrange(leaves)
    edited, _ = balanced_rnd_tree_term(
        leaves, edit=(edit_leaf, Fraction(rng.randrange(1, 10_000), 13))
    )
    edited = A.intern_term(edited)
    incremental = session.analyze_term(edited, skeleton)
    scratch = infer(edited, skeleton, memo=False)
    analysis = incremental.analysis
    assert analysis.result_type == scratch.type
    assert analysis.context.as_dict() == scratch.context.as_dict()
    if edit_leaf % 16 != 15:  # editing a literal leaf actually changes the term
        assert incremental.stats.reused_judgements > 0


def test_incremental_source_reanalysis_reuses_judgements():
    shared_body = (
        "  let [x1] = x;\n"
        "  a = mul (x1, x1);\n"
        "  b = add (|a, x1|);\n"
        "  rnd b\n"
    )
    source_a = "function F (x: ![3]num) : M[eps]num {\n" + shared_body + "}\n"
    source_b = "function G (x: ![3]num) : M[eps]num {\n" + shared_body + "}\n"
    session = IncrementalAnalyzer()
    cold = session.analyze_source(source_a)
    assert cold.stats.computed_judgements > 0
    # Replaying the identical source is pure reuse: the retained interned
    # root makes the whole definition a single root-level hit.
    replay = session.analyze_source(source_a)
    assert replay.stats.computed_judgements == 0
    assert replay.stats.reused_judgements >= 1

    warm = session.analyze_source(source_b)
    assert warm.stats.reused_judgements > 0
    # Identical body, new name: the body is (at least) one subtree-level
    # hit, so the warm run recomputes strictly less than the cold one.
    # (The exact wrapper-node count depends on what other tests have
    # interned in this process, so the bound is relative, not absolute.)
    assert warm.stats.computed_judgements < cold.stats.computed_judgements
    assert str(warm.analysis.error_grade) == str(cold.analysis.error_grade)


def test_incremental_edit_cost_is_spine_sized():
    base, skeleton = balanced_rnd_tree_term(256)
    session = IncrementalAnalyzer()
    session.analyze_term(A.intern_term(base), skeleton)
    edited, _ = balanced_rnd_tree_term(256, edit=(100, Fraction(123456, 7)))
    report = session.analyze_term(A.intern_term(edited), skeleton)
    # The changed spine of a 256-leaf balanced tree is ~log2(256) pairs.
    assert report.stats.computed_judgements <= 24
    assert report.stats.reused_judgements >= 4


# ---------------------------------------------------------------------------
# Memo bookkeeping
# ---------------------------------------------------------------------------


def test_judgement_memo_is_bounded():
    term, skeleton = dag_fanout_term(64, block_operations=4)
    term = A.intern_term(term)
    tiny = JudgementMemo(capacity=8)
    infer(term, skeleton, memo=tiny)
    assert len(tiny) <= 8
    assert tiny.evictions > 0
    stats = tiny.stats()
    assert stats["capacity"] == 8 and stats["entries"] <= 8


def test_free_variable_cap_opts_out_but_stays_correct():
    # A term whose spine nodes reference more variables than the cap:
    # those nodes skip the memo, yet results must be unchanged.
    wide = A.Rnd(A.Var("v0"))
    names = ["v0"]
    for index in range(1, A.FREE_VARIABLE_CAP + 8):
        names.append(f"v{index}")
        wide = A.WithPair(wide, A.Rnd(A.Var(f"v{index}")))
    term = A.intern_term(A.WithPair(wide, wide))  # force sharing at the top
    skeleton = {name: T.NUM for name in names}
    assert A.term_free_variables(term) is None  # over the cap
    assert_same_judgement(
        infer(term, skeleton, memo=False),
        infer(term, skeleton, memo=JudgementMemo()),
    )


def test_term_free_variables_matches_reference():
    rng = random.Random(7)
    for _ in range(10):
        term = random_shared_term(rng, size=6)
        capped = A.term_free_variables(term)
        full = A.free_variables(term)
        if capped is not None:
            assert capped == frozenset(full)
        else:
            assert len(full) > A.FREE_VARIABLE_CAP


def test_tree_and_dag_sizes():
    block = shared_block_term(4)
    term = A.intern_term(A.WithPair(block, block))
    assert A.tree_size(term) == A.term_size(term)
    assert A.dag_size(term) < A.tree_size(term)
    # Un-interned terms work too (no memo, same values).
    plain = A.WithPair(A.Rnd(A.Var("x")), A.Rnd(A.Var("x")))
    assert A.tree_size(plain) == A.term_size(plain) == 5
    assert A.dag_size(plain) == 5  # distinct objects, no interning


def test_memo_stats_surfaces():
    report = memo_report()
    assert {"intern_table", "fingerprints", "free_variables"} <= set(report["ast"])
    grades = grade_memo_stats()
    assert grades["add"]["capacity"] == 16384
    assert grades["mul"]["capacity"] == 16384
    assert report["grades"]["add"]["entries"] <= grades["add"]["capacity"]
    assert "exactmath" in report
