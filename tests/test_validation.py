"""Tests for the differential soundness harness (``repro.validation``)."""

import os
from dataclasses import replace
from fractions import Fraction

import pytest

from repro.analysis.batch import BatchItem
from repro.analysis.cache import AnalysisCache
from repro.core import ast as A
from repro.core import types as T
from repro.frontend import expr as E
from repro.validation.backends import (
    BackendBound,
    StandardBackend,
    TaylorBackend,
    default_backends,
)
from repro.validation.extract import ExtractionError, extract_program_expression
from repro.validation.harness import (
    ProgramValidation,
    ValidationEngine,
    ValidationOptions,
    ValidationResult,
    decide_backend_status,
    decide_verdict,
    subjects_from_item,
    validate_item,
    validation_key,
)
from repro.validation.sampling import EmpiricalSummary, point_seed

EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples", "programs"
)

FMA_SOURCE = """
function FMA (x: num) (y: num) (z: num) : M[eps]num {
  a = mul (x, y);
  b = add (|a, z|);
  rnd b
}
"""

HORNER_SOURCE = FMA_SOURCE + """
function Horner2 (a0: num) (a1: num) (a2: num) (x: ![2]num) : M[2*eps]num {
  let [x1] = x;
  s1 = FMA a2 x1 a1;
  let z = s1;
  FMA z x1 a0
}
"""

EPS = Fraction(1, 2**52)


def _empirical(max_rel, max_rp=None, rounds=3, sqrt_calls=0, ok=True):
    max_rel = Fraction(max_rel)
    return EmpiricalSummary(
        ok=ok,
        points=2,
        runs=10,
        max_rel=max_rel,
        max_rp=Fraction(max_rp) if max_rp is not None else max_rel,
        worst_inputs={"x": Fraction(1, 2)},
        worst_mode="ru",
        max_rounds=rounds,
        max_sqrt_calls=sqrt_calls,
        seconds=0.0,
    )


class TestVerdictLogic:
    def test_sound_pair(self):
        bound = BackendBound(backend="b", relative_error=4 * EPS)
        report = decide_backend_status(bound, _empirical(2 * EPS), precision=53)
        assert report.status == "ok"
        assert report.tightness == pytest.approx(0.5)

    def test_violating_pair(self):
        bound = BackendBound(backend="b", relative_error=EPS)
        report = decide_backend_status(bound, _empirical(2 * EPS), precision=53)
        assert report.status == "violation"
        assert decide_verdict([report], _empirical(2 * EPS)) == "violation"

    def test_rp_domain_comparison_with_round_down_slack(self):
        # Empirical RP exceeding the grade by under rounds * u^2 is still
        # sound: the grade charges u per rounding while a round-down step
        # costs up to -ln(1-u) = u + u^2-ish.
        bound = BackendBound(backend="lnum", relative_error=2 * EPS, rp_bound=2 * EPS)
        just_over = 2 * EPS + Fraction(1, 2**104)
        report = decide_backend_status(
            bound, _empirical(2 * EPS, max_rp=just_over, rounds=2), precision=53
        )
        assert report.status == "ok"
        far_over = 2 * EPS + Fraction(8, 2**104)
        report = decide_backend_status(
            bound, _empirical(2 * EPS, max_rp=far_over, rounds=2), precision=53
        )
        assert report.status == "violation"

    def test_failed_and_unsupported_backends_do_not_decide(self):
        failed = decide_backend_status(
            BackendBound(backend="b", relative_error=None, failed=True, message="x"),
            _empirical(EPS),
            precision=53,
        )
        unsupported = decide_backend_status(
            BackendBound(backend="b", relative_error=None, unsupported=True),
            _empirical(EPS),
            precision=53,
        )
        assert failed.status == "failed"
        assert unsupported.status == "unsupported"
        assert decide_verdict([failed, unsupported], _empirical(EPS)) == "inconclusive"

    def test_inconclusive_without_empirical_evidence(self):
        bound = BackendBound(backend="b", relative_error=EPS)
        empirical = _empirical(0, ok=False)
        report = decide_backend_status(bound, empirical, precision=53)
        assert report.status == "unchecked"
        assert decide_verdict([report], empirical) == "inconclusive"

    def test_zero_error_is_sound_with_zero_tightness(self):
        bound = BackendBound(backend="b", relative_error=EPS)
        report = decide_backend_status(bound, _empirical(0, max_rp=0), precision=53)
        assert report.status == "ok"
        assert report.tightness == 0.0


class TestExpressionExtraction:
    def test_fma_extracts_to_mul_add(self):
        item = BatchItem(name="fma", kind="lnum", source=FMA_SOURCE)
        (subject,) = subjects_from_item(item)
        assert subject.expression is not None
        assert {name for name, _tau in subject.parameters} == {"x", "y", "z"}
        assert E.evaluate_exact(
            subject.expression, {"x": 2, "y": 3, "z": 5}
        ) == Fraction(11)

    def test_extraction_beta_reduces_through_definitions(self):
        item = BatchItem(name="horner", kind="lnum", source=HORNER_SOURCE)
        fma_subject, horner_subject = subjects_from_item(item)
        assert horner_subject.name.endswith("::Horner2")
        # a2*x^2 + a1*x + a0 at (a0, a1, a2, x) = (1, 2, 3, 10).
        assert E.evaluate_exact(
            horner_subject.expression, {"a0": 1, "a1": 2, "a2": 3, "x": 10}
        ) == Fraction(321)

    def test_conditionals_extract_to_cond(self):
        source = (
            "function pick (a: ![inf]num) (b: ![inf]num) : M[eps]num {\n"
            "  let [a1] = a;\n  let [b1] = b;\n"
            "  if geq (a1, b1) then rnd a1 else rnd b1\n}"
        )
        (subject,) = subjects_from_item(BatchItem(name="p", kind="lnum", source=source))
        assert isinstance(subject.expression, E.Cond)

    def test_unknown_shapes_raise_extraction_error(self):
        # A higher-order result is outside the fragment.
        term = A.Lambda("f", T.Arrow(T.NUM, T.NUM), A.Var("f"))
        with pytest.raises(ExtractionError):
            extract_program_expression(A.intern_term(term))


class TestStandardBackend:
    def test_gamma_uses_observed_rounds_not_node_counts(self):
        item = BatchItem(name="horner", kind="lnum", source=HORNER_SOURCE)
        _fma, horner = subjects_from_item(item)
        backend = StandardBackend()
        # Horner2 executes two FMA calls = 2 roundings, even though the
        # single FMA definition contains one syntactic rnd node.
        bound = backend.bound(horner, _empirical(EPS, rounds=2))
        assert bound.details["rounds"] == 2
        assert bound.relative_error == Fraction(2) * EPS / (1 - 2 * EPS)

    def test_needs_empirical_evidence(self):
        item = BatchItem(name="fma", kind="lnum", source=FMA_SOURCE)
        (subject,) = subjects_from_item(item)
        assert StandardBackend().bound(subject, None).unsupported

    def test_taylor_cap_marks_large_programs_unsupported(self):
        item = BatchItem(name="fma", kind="lnum", source=FMA_SOURCE)
        (subject,) = subjects_from_item(item)
        assert TaylorBackend(operation_cap=1).bound(subject).unsupported
        assert not TaylorBackend().bound(subject).failed


class TestEngine:
    def test_examples_are_sound(self):
        engine = ValidationEngine(
            jobs=1, options=ValidationOptions(points=2, samples=8)
        )
        result = engine.validate_paths([EXAMPLES])
        assert result.programs >= 4
        assert result.violations == 0 and result.errors == 0
        assert result.exit_code() == 0
        for report in result.reports:
            assert report.verdict == "sound"
            lnum = report.backend("lnum")
            assert lnum is not None and lnum.status == "ok"
            assert 0 <= lnum.tightness <= 1

    def test_fanout_determinism_under_fixed_seed(self):
        options = ValidationOptions(points=3, samples=9, seed=7)
        serial = ValidationEngine(jobs=1, options=options).validate_paths([EXAMPLES])
        with ValidationEngine(jobs=2, options=options) as engine:
            parallel = engine.validate_paths([EXAMPLES])
        assert [r.name for r in serial.reports] == [r.name for r in parallel.reports]
        for left, right in zip(serial.reports, parallel.reports):
            assert left.verdict == right.verdict
            assert left.empirical.max_rel == right.empirical.max_rel
            assert left.empirical.max_rp == right.empirical.max_rp
            assert left.empirical.worst_inputs == right.empirical.worst_inputs
            assert left.empirical.max_rounds == right.empirical.max_rounds

    def test_seed_changes_the_sampled_points(self):
        item = BatchItem(name="fma", kind="lnum", source=FMA_SOURCE)
        (subject,) = subjects_from_item(item)
        one = ValidationEngine(
            jobs=1, options=ValidationOptions(points=1, samples=2, seed=1)
        ).validate_subject(subject)
        two = ValidationEngine(
            jobs=1, options=ValidationOptions(points=1, samples=2, seed=2)
        ).validate_subject(subject)
        assert one.empirical.worst_inputs != two.empirical.worst_inputs

    def test_parse_failure_is_an_error_verdict(self, tmp_path):
        broken = tmp_path / "broken.lnum"
        broken.write_text("function f (x num { rnd x }")
        result = ValidationEngine(
            jobs=1, options=ValidationOptions(points=1, samples=1)
        ).validate_paths([str(broken)])
        assert result.errors == 1
        assert result.exit_code() == 2


class TestCacheKeys:
    def _subject(self):
        item = BatchItem(name="fma", kind="lnum", source=FMA_SOURCE)
        return subjects_from_item(item)[0]

    def test_key_is_stable_for_identical_runs(self):
        options = ValidationOptions(points=2, samples=8, seed=3)
        assert validation_key(self._subject(), None, options) == validation_key(
            self._subject(), None, options
        )

    def test_key_covers_every_sampling_parameter(self):
        subject = self._subject()
        base = ValidationOptions(points=2, samples=8, seed=3)
        key = validation_key(subject, None, base)
        assert validation_key(subject, None, replace(base, samples=9)) != key
        assert validation_key(subject, None, replace(base, points=3)) != key
        assert validation_key(subject, None, replace(base, seed=4)) != key
        assert validation_key(subject, None, replace(base, precision=24)) != key

    def test_key_covers_the_declared_input_error_model(self):
        base = ValidationOptions(points=2, samples=8)
        plain = self._subject()
        with_errors = self._subject()
        with_errors.input_errors = {"x": Fraction(1, 2**52)}
        assert validation_key(plain, None, base) != validation_key(
            with_errors, None, base
        )

    def test_point_seed_is_chunking_independent(self):
        assert point_seed(0, "k", 1) == point_seed(0, "k", 1)
        assert point_seed(0, "k", 1) != point_seed(0, "k", 2)
        assert point_seed(0, "k", 1) != point_seed(1, "k", 1)

    def test_cached_results_are_replayed(self, tmp_path):
        cache = AnalysisCache(directory=str(tmp_path))
        options = ValidationOptions(points=1, samples=2)
        engine = ValidationEngine(jobs=1, cache=cache, options=options)
        first = engine.validate_subject(self._subject())
        second = engine.validate_subject(self._subject())
        assert not first.from_cache and second.from_cache
        assert second.verdict == first.verdict
        # A fresh process (fresh engine) hits the disk tier.
        warm_engine = ValidationEngine(
            jobs=1, cache=AnalysisCache(directory=str(tmp_path)), options=options
        )
        warm = warm_engine.validate_subject(self._subject())
        assert warm.from_cache


class TestValidateItem:
    def test_item_validation_shape(self):
        item = BatchItem(name="horner", kind="lnum", source=HORNER_SOURCE)
        result = validate_item(item, options={"points": 1, "samples": 2})
        assert result.ok and result.verdict == "sound"
        assert [r.name.split("::")[-1] for r in result.reports] == ["FMA", "Horner2"]
        payload = result.to_dict()
        assert payload["verdict"] == "sound"
        assert payload["reports"][0]["backends"]

    def test_parse_failure(self):
        item = BatchItem(name="broken", kind="lnum", source="function f (x num {")
        result = validate_item(item)
        assert not result.ok and result.verdict == "error"

    def test_empty_source_is_inconclusive_not_sound(self):
        item = BatchItem(name="empty", kind="lnum", source="# just a comment\n")
        result = validate_item(item)
        assert result.ok and result.reports == []
        assert result.verdict == "inconclusive"

    def test_binary32_backends_match_the_sampling_precision(self):
        from repro.core.grades import Grade
        from repro.core.inference import InferenceConfig
        from repro.floats.formats import STANDARD_FORMATS

        fmt = STANDARD_FORMATS["binary32"]
        config = InferenceConfig().with_rnd_grade(
            Grade.constant(fmt.unit_roundoff(True))
        )
        item = BatchItem(name="fma", kind="lnum", source=FMA_SOURCE)
        (subject,) = subjects_from_item(item)
        engine = ValidationEngine(
            jobs=1,
            config=config,
            options=ValidationOptions(points=2, samples=8, precision=fmt.precision),
        )
        report = engine.validate_subject(subject)
        # Empirical errors are ~2^-24; every backend must claim at the same
        # precision or flag spurious violations.
        assert report.verdict == "sound"
        assert report.empirical.max_rel > Fraction(1, 2**40)
        for backend_report in report.backends:
            assert backend_report.status != "violation"


class TestCli:
    def test_sound_corpus_exits_zero(self, capsys):
        from repro.cli import main

        code = main(
            ["validate", EXAMPLES, "--points", "1", "--samples", "4", "--no-cache"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "SOUND" in output and "violation" in output

    def test_violation_exits_nonzero(self, monkeypatch, capsys):
        from repro.cli import main
        from repro.validation import harness

        def fake_validate_subjects(self, subjects):
            return ValidationResult(
                reports=[
                    ProgramValidation(name="prog", kind="lnum", verdict="violation")
                ],
                wall_seconds=0.0,
                jobs=1,
            )

        monkeypatch.setattr(
            harness.ValidationEngine, "validate_subjects", fake_validate_subjects
        )
        code = main(["validate", EXAMPLES, "--no-cache"])
        assert code == 1
        capsys.readouterr()

    def test_parse_error_exits_two(self, tmp_path, capsys):
        from repro.cli import main

        broken = tmp_path / "broken.lnum"
        broken.write_text("function f (x num { rnd x }")
        assert main(["validate", str(broken), "--no-cache"]) == 2
        capsys.readouterr()

    def test_requires_paths_or_suite_or_inputs(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["validate"])

    def test_nearest_is_rejected_in_corpus_mode(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["validate", EXAMPLES, "--nearest"])

    def test_zero_points_is_rejected(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["validate", EXAMPLES, "--points", "0", "--no-cache"])
        with pytest.raises(ValueError):
            ValidationOptions(points=0)

    def test_json_and_bench_report(self, tmp_path, capsys):
        import json

        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main(
            [
                "validate",
                os.path.join(EXAMPLES, "fma.lnum"),
                "--points",
                "1",
                "--samples",
                "2",
                "--no-cache",
                "--json",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out.split("report written")[0])
        assert payload["aggregate"]["violations"] == 0
        report = json.loads(out.read_text())
        assert report["schema"] == 1
        (entry,) = report["programs"]
        assert entry["verdict"] == "sound"
        assert 0 <= entry["backends"]["lnum"]["tightness"] <= 1


class TestBaselineGate:
    def _report(self, tightness=0.5, status="ok", verdict="sound"):
        return {
            "schema": 1,
            "programs": [
                {
                    "name": "p",
                    "verdict": verdict,
                    "backends": {
                        "lnum": {"status": status, "bound": 1e-16, "tightness": tightness}
                    },
                }
            ],
        }

    def test_gate_passes_on_identical_reports(self):
        from repro.validation.bench import compare_with_baseline

        ok, _lines = compare_with_baseline(self._report(), self._report())
        assert ok

    def test_gate_fails_on_violation(self):
        from repro.validation.bench import compare_with_baseline

        ok, lines = compare_with_baseline(
            self._report(verdict="violation"), self._report()
        )
        assert not ok and any("VIOLATION" in line for line in lines)

    def test_gate_fails_on_loosened_bound(self):
        from repro.validation.bench import compare_with_baseline

        ok, lines = compare_with_baseline(
            self._report(tightness=0.05), self._report(tightness=0.5), max_loosening=4.0
        )
        assert not ok and any("loosened" in line for line in lines)

    def test_gate_fails_when_a_backend_loses_its_bound(self):
        from repro.validation.bench import compare_with_baseline

        ok, lines = compare_with_baseline(
            self._report(status="failed"), self._report()
        )
        assert not ok and any("lost its bound" in line for line in lines)

    def test_new_programs_are_informational(self):
        from repro.validation.bench import compare_with_baseline

        ok, lines = compare_with_baseline(self._report(), {"programs": []})
        assert ok and any("new" in line for line in lines)

    def test_subset_runs_leave_missing_rows_informational(self):
        from repro.validation.bench import compare_with_baseline

        baseline = self._report()
        baseline["programs"].append(dict(baseline["programs"][0], name="other::q"))
        ok, lines = compare_with_baseline(self._report(), baseline)
        assert ok and any("missing" in line for line in lines)

    def test_parse_regression_swallowing_rows_fails_the_gate(self):
        from repro.validation.bench import compare_with_baseline

        baseline = {
            "programs": [
                {
                    "name": "dir/prog.lnum::FMA",
                    "verdict": "sound",
                    "backends": {"lnum": {"status": "ok", "tightness": 0.5}},
                }
            ]
        }
        # The file now fails to parse: one error row, function rows gone.
        current = {
            "programs": [
                {"name": "dir/prog.lnum", "verdict": "error", "backends": {}}
            ]
        }
        ok, lines = compare_with_baseline(current, baseline)
        assert not ok
        assert any("lost to an error" in line for line in lines)


class TestStochasticSummarySatellite:
    def test_summary_names_the_worst_sample(self):
        from repro.core.parser import parse_term
        from repro.core.semantics.evaluator import build_environment
        from repro.core.semantics.randomized import stochastic_error_statistics

        term = parse_term("rnd x")
        env = build_environment({"x": Fraction(1, 10)}, {"x": T.NUM})
        summary = stochastic_error_statistics(term, env, samples=20, seed=3)
        assert summary.worst_result is not None
        assert 0 <= summary.worst_sample < 20
        _, high = __import__(
            "repro.floats.exactmath", fromlist=["rp_distance_enclosure"]
        ).rp_distance_enclosure(summary.ideal_value, summary.worst_result)
        assert Fraction(high) == summary.max_error

    def test_explicit_rng_overrides_seed(self):
        import random

        from repro.core.parser import parse_term
        from repro.core.semantics.evaluator import build_environment
        from repro.core.semantics.randomized import stochastic_error_statistics

        term = parse_term("rnd x")
        env = build_environment({"x": Fraction(1, 10)}, {"x": T.NUM})
        one = stochastic_error_statistics(term, env, samples=5, rng=random.Random(9))
        two = stochastic_error_statistics(term, env, samples=5, rng=random.Random(9))
        assert one == two

    def test_rejects_zero_samples(self):
        from repro.core.parser import parse_term
        from repro.core.semantics.randomized import stochastic_error_statistics

        with pytest.raises(ValueError):
            stochastic_error_statistics(parse_term("rnd x"), None, samples=0)


def test_default_backends_filter():
    backends = default_backends(names=["lnum", "gappa_like"])
    assert [backend.name for backend in backends] == ["lnum", "gappa_like"]
    with pytest.raises(ValueError):
        default_backends(names=["nope"])
