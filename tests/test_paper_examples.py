"""The worked examples of Sections 2 and 5 reproduce the paper's types."""

import pytest

from repro.analysis import analyze_source
from repro.core import infer, parse_program, parse_type
from repro.core.subtyping import is_subtype
from repro.benchsuite.paper_examples import PAPER_EXAMPLES


@pytest.mark.parametrize("name", sorted(PAPER_EXAMPLES))
def test_example_infers_the_published_type(name):
    example = PAPER_EXAMPLES[name]
    program = parse_program(example.source)
    term = program.term_for(example.function)
    result = infer(term, {})
    expected = parse_type(example.expected_type)
    assert is_subtype(result.type, expected), (
        f"{name}: inferred {result.type}, expected a subtype of {expected} "
        f"({example.paper_reference})"
    )


@pytest.mark.parametrize("name", sorted(PAPER_EXAMPLES))
def test_example_type_is_tight(name):
    """The inferred type is not merely a subtype: the published grade is minimal."""
    example = PAPER_EXAMPLES[name]
    program = parse_program(example.source)
    term = program.term_for(example.function)
    result = infer(term, {})
    expected = parse_type(example.expected_type)
    # Tightness: the expected type is also a supertype of the inferred one and
    # the two agree (mutual subtyping).
    assert is_subtype(result.type, expected)
    assert is_subtype(expected, result.type) or name in ("case1",), (
        f"{name}: inferred {result.type} is strictly tighter than the paper's "
        f"{expected}"
    )


def test_ma_versus_fma_error_grades():
    """Fig. 8: MA incurs two roundings, FMA only one."""
    ma = analyze_source(PAPER_EXAMPLES["MA"].source, function="MA")
    fma = analyze_source(PAPER_EXAMPLES["FMA"].source, function="FMA")
    assert ma.error_grade == 2 * fma.error_grade


def test_horner2_with_error_decomposition(eps_value):
    """Equation (13): 5 eps of propagated input error + 2 eps of new rounding."""
    plain = analyze_source(PAPER_EXAMPLES["Horner2"].source, function="Horner2")
    with_error = analyze_source(
        PAPER_EXAMPLES["Horner2_with_error"].source, function="Horner2_with_error"
    )
    assert plain.rp_bound == 2 * eps_value
    assert with_error.rp_bound == 7 * eps_value
    assert with_error.rp_bound - plain.rp_bound == 5 * eps_value


def test_pow4_grade_matches_section_2():
    pow4 = analyze_source(PAPER_EXAMPLES["pow4"].source, function="pow4")
    assert str(pow4.error_grade) == "3*eps"
