"""Tests for the expression IR, the FPCore parser and the Λnum compiler."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ast as A
from repro.core import types as T
from repro.core.grades import EPS
from repro.core.inference import infer
from repro.core.semantics import run_both
from repro.core.semantics.evaluator import build_environment
from repro.floats.standard_model import StandardModel
from repro.frontend import expr as E
from repro.frontend.compiler import CompileError, compile_expression
from repro.frontend.fpcore import parse_fpcore, parse_sexpr

positive = st.fractions(min_value=Fraction(1, 100), max_value=Fraction(100)).filter(lambda q: q > 0)


class TestExpressionIR:
    def test_operator_sugar(self):
        x = E.Var("x")
        expr = (x + 1) * x
        assert isinstance(expr, E.Mul) and isinstance(expr.left, E.Add)

    def test_free_variables_in_order(self):
        expr = E.Add(E.Var("b"), E.Mul(E.Var("a"), E.Var("b")))
        assert E.free_variables(expr) == ("b", "a")

    def test_operation_count(self):
        expr = E.Sqrt(E.Add(E.Mul(E.Var("x"), E.Var("x")), E.Var("y")))
        assert E.operation_count(expr) == 3

    def test_fma_counts_as_one_rounded_operation(self):
        assert E.operation_count(E.Fma(E.Var("a"), E.Var("x"), E.Var("b"))) == 1

    def test_evaluate_exact(self):
        expr = E.Div(E.Var("x"), E.Add(E.Var("x"), E.Var("y")))
        value = E.evaluate_exact(expr, {"x": 1, "y": 3})
        assert value == Fraction(1, 4)

    def test_evaluate_exact_conditional(self):
        expr = E.Cond(E.Comparison("<", E.Var("x"), E.Const(1)), E.Var("x"), E.Const(1))
        assert E.evaluate_exact(expr, {"x": Fraction(1, 2)}) == Fraction(1, 2)
        assert E.evaluate_exact(expr, {"x": Fraction(2)}) == Fraction(1)

    def test_evaluate_fp_applies_rounding(self):
        expr = E.Add(E.Var("x"), E.Var("y"))
        exact = E.evaluate_exact(expr, {"x": "0.1", "y": "0.2"})
        approx = E.evaluate_fp(expr, {"x": "0.1", "y": "0.2"})
        assert approx != exact
        assert abs(approx - exact) / exact < Fraction(1, 2**50)

    def test_differentiate_product_rule(self):
        x = E.Var("x")
        expr = E.Mul(x, x)
        derivative = E.differentiate(expr, x)
        assert E.evaluate_exact(derivative, {"x": 5}) == 10

    def test_differentiate_with_respect_to_subexpression(self):
        inner = E.Add(E.Var("x"), E.Var("y"))
        expr = E.Sqrt(inner)
        derivative = E.differentiate(expr, inner)
        value = E.evaluate_exact(derivative, {"x": 2, "y": 2})
        assert value == Fraction(1, 4)  # 1 / (2 * sqrt(4))

    def test_differentiate_division(self):
        x, y = E.Var("x"), E.Var("y")
        derivative = E.differentiate(E.Div(x, y), y)
        assert E.evaluate_exact(derivative, {"x": 4, "y": 2}) == -1

    def test_to_string(self):
        expr = E.Div(E.Const(1), E.Sqrt(E.Var("x")))
        assert str(expr) == "(1 / sqrt(x))"


class TestFPCoreParser:
    def test_sexpr_reader(self):
        assert parse_sexpr("(+ x 1)") == ["+", "x", Fraction(1)]
        assert parse_sexpr("(a (b c) 2.5)") == ["a", ["b", "c"], Fraction("2.5")]

    def test_basic_core(self):
        core = parse_fpcore("(FPCore (x y) :name \"hypot\" (sqrt (+ (* x x) (* y y))))")
        assert core.arguments == ["x", "y"]
        assert core.name == "hypot"
        assert isinstance(core.expression, E.Sqrt)

    def test_precondition_ranges(self):
        core = parse_fpcore(
            "(FPCore (x) :pre (and (<= 0.1 x) (<= x 1000)) (+ x 1))"
        )
        assert core.input_ranges == {"x": (Fraction("0.1"), Fraction(1000))}

    def test_let_bindings_are_inlined(self):
        core = parse_fpcore("(FPCore (x) (let ((t (* x x))) (+ t 1)))")
        assert E.operation_count(core.expression) == 2
        assert E.evaluate_exact(core.expression, {"x": 3}) == 10

    def test_conditional(self):
        core = parse_fpcore("(FPCore (x) (if (< x 1) x (sqrt x)))")
        assert isinstance(core.expression, E.Cond)

    def test_variadic_addition(self):
        core = parse_fpcore("(FPCore (a b c) (+ a b c))")
        assert E.operation_count(core.expression) == 2

    def test_fma(self):
        core = parse_fpcore("(FPCore (a x b) (fma a x b))")
        assert isinstance(core.expression, E.Fma)

    def test_unsupported_operator(self):
        with pytest.raises(Exception):
            parse_fpcore("(FPCore (x) (sin x))")


class TestCompiler:
    def test_single_addition(self):
        program = compile_expression(E.Add(E.Var("x"), E.Var("y")))
        assert program.skeleton == {"x": T.NUM, "y": T.NUM}
        result = infer(program.term, program.skeleton)
        assert result.type == T.Monadic(EPS, T.NUM)

    def test_each_operation_rounds_once(self):
        expr = E.Sqrt(E.Add(E.Mul(E.Var("x"), E.Var("x")), E.Mul(E.Var("y"), E.Var("y"))))
        program = compile_expression(expr)
        assert A.count_rounds(program.term) == 4

    def test_hypot_grade(self):
        expr = E.Sqrt(E.Add(E.Mul(E.Var("x"), E.Var("x")), E.Mul(E.Var("y"), E.Var("y"))))
        program = compile_expression(expr)
        result = infer(program.term, program.skeleton)
        assert result.error_grade == Fraction(5, 2) * EPS

    def test_fma_single_rounding(self):
        program = compile_expression(E.Fma(E.Var("a"), E.Var("x"), E.Var("b")))
        assert A.count_rounds(program.term) == 1
        result = infer(program.term, program.skeleton)
        assert result.error_grade == EPS

    def test_unrounded_compilation(self):
        expr = E.Mul(E.Var("x"), E.Var("x"))
        program = compile_expression(expr, rounded=False)
        result = infer(program.term, program.skeleton)
        assert result.type == T.NUM
        assert result.sensitivity_of("x") == 2

    def test_constants_are_embedded(self):
        program = compile_expression(E.Add(E.Var("x"), E.Const(1)))
        result = infer(program.term, program.skeleton)
        assert result.error_grade == EPS

    def test_nonpositive_constant_rejected(self):
        with pytest.raises(CompileError):
            compile_expression(E.Add(E.Var("x"), E.Const(0)))

    def test_subtraction_rejected(self):
        with pytest.raises(CompileError):
            compile_expression(E.Sub(E.Var("x"), E.Var("y")))

    def test_conditional_at_root(self):
        expr = E.Cond(E.Comparison(">", E.Var("a"), E.Var("b")), E.Var("a"), E.Var("b"))
        program = compile_expression(expr)
        result = infer(program.term, program.skeleton)
        assert isinstance(result.type, T.Monadic)

    def test_nested_conditional_rejected(self):
        inner = E.Cond(E.Comparison(">", E.Var("a"), E.Var("b")), E.Var("a"), E.Var("b"))
        with pytest.raises(CompileError):
            compile_expression(E.Add(inner, E.Var("c")))

    def test_guard_must_compare_inputs(self):
        guard = E.Comparison(">", E.Add(E.Var("a"), E.Var("b")), E.Var("b"))
        expr = E.Cond(guard, E.Var("a"), E.Var("b"))
        with pytest.raises(CompileError):
            compile_expression(expr)

    @given(
        x=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        y=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_compiled_fp_semantics_matches_standard_model(self, x, y):
        """The Λnum FP evaluation of a compiled program equals the expression's
        standard-model evaluation (same rounding at every operation).  Inputs
        are binary64 values so that neither side rounds them on entry."""
        x, y = Fraction(x), Fraction(y)
        expr = E.Div(E.Add(E.Mul(E.Var("x"), E.Var("x")), E.Var("y")), E.Var("y"))
        program = compile_expression(expr)
        environment = build_environment({"x": x, "y": y}, program.skeleton)
        ideal, approx = run_both(program.term, environment)
        assert ideal == E.evaluate_exact(expr, {"x": x, "y": y})
        assert approx == E.evaluate_fp(expr, {"x": x, "y": y}, StandardModel())
