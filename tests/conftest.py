"""Shared fixtures and path setup for the test suite."""

import os
import sys
from fractions import Fraction

import pytest

# Fallback so the tests run from a source checkout even when the package has
# not been pip-installed (e.g. offline environments without `wheel`).
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path and os.path.isdir(_SRC):
    sys.path.insert(0, _SRC)

from repro.core.grades import DEFAULT_REGISTRY, EPS_SYMBOL  # noqa: E402
from repro.core.inference import InferenceConfig  # noqa: E402
from repro.core.signature import standard_signature  # noqa: E402


#: The exact unit roundoff used throughout the standard instantiation.
EPS_VALUE = DEFAULT_REGISTRY.value_of(EPS_SYMBOL)


@pytest.fixture(scope="session")
def eps_value() -> Fraction:
    return EPS_VALUE


@pytest.fixture(scope="session")
def signature():
    return standard_signature()


@pytest.fixture()
def config() -> InferenceConfig:
    return InferenceConfig()
