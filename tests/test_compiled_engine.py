"""Differential property suite: compiled kernel vs interpreted engine.

The compiled engine (:mod:`repro.core.compiled`) must be a *bit-for-bit*
drop-in for the interpreted walker of :mod:`repro.core.inference`: identical
judgements (same interned grade instances, same context treap entries, same
types) and identical failures (same error class, same message) on every
term.  This suite drives both engines over randomized terms — binder-heavy
chains, case-heavy ladders, shared-DAG programs, the benchmark families —
and over adversarial grades whose int64 products overflow, which must take
the exact ``Fraction`` fallback rather than wrap.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ast as A
from repro.core import types as T
from repro.core.compiled import (
    clear_plan_memo,
    compiled_memo_stats,
    have_numpy,
    plan_for,
)
from repro.core.compiled.packed import packed_memo_stats
from repro.core.errors import LnumError
from repro.core.grades import DEFAULT_REGISTRY, EPS, INFINITY, ONE, ZERO, Grade
from repro.core.inference import InferenceConfig, infer

from test_grades_properties import finite_grades

NUM = T.NUM


# ---------------------------------------------------------------------------
# The differential oracle
# ---------------------------------------------------------------------------


def _run(engine, term, skeleton, config):
    try:
        result = infer(term, skeleton, config, memo=False, engine=engine)
        return ("ok", result)
    except LnumError as error:
        return ("error", (type(error), str(error)))


def assert_engines_agree(term, skeleton=None, config=None):
    """Both engines produce the identical judgement or the identical error."""
    skeleton = skeleton or {}
    interpreted = _run("interpreted", term, skeleton, config)
    compiled = _run("compiled", term, skeleton, config)
    assert interpreted[0] == compiled[0], (interpreted, compiled)
    if interpreted[0] == "error":
        assert interpreted[1] == compiled[1]
        return None
    ri, rc = interpreted[1], compiled[1]
    assert ri.type == rc.type
    assert ri.context == rc.context
    entries_i = list(ri.context._entries())
    entries_c = list(rc.context._entries())
    assert len(entries_i) == len(entries_c)
    for (ni, ti, si), (nc, tc, sc) in zip(entries_i, entries_c):
        assert ni == nc
        assert ti == tc
        # Grades are interned: equality must be object identity.
        assert si is sc
    return ri


# ---------------------------------------------------------------------------
# Term strategies
# ---------------------------------------------------------------------------

_FREE_VARS = tuple(f"x{i}" for i in range(4))
_SKELETON = {name: NUM for name in _FREE_VARS}


def _leaf(draw):
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return A.Const(draw(st.sampled_from((0.5, 1.0, 2.0))))
    return A.Var(draw(st.sampled_from(_FREE_VARS)))


@st.composite
def num_terms(draw, depth=0):
    """Terms of (mostly) type Num; occasional ill-typed shapes are fine —
    the oracle checks error agreement too."""
    if depth >= 3 or draw(st.booleans()):
        return _leaf(draw)
    op = draw(st.sampled_from(("add", "mul", "div")))
    left = draw(num_terms(depth + 1))
    right = draw(num_terms(depth + 1))
    pair = A.WithPair(left, right) if op == "add" else A.TensorPair(left, right)
    return A.Op(op, pair)


@st.composite
def binder_chains(draw):
    """Binder-heavy: serial let / let-bind chains over rounded operations."""
    steps = draw(st.integers(1, 8))
    body = A.Rnd(draw(num_terms()))
    for index in range(steps):
        value = A.Rnd(draw(num_terms()))
        accumulator = A.Op(
            "add", A.WithPair(A.Var(f"s{index}"), draw(num_terms()))
        )
        step = A.LetBind(f"s{index}", body, A.Rnd(accumulator))
        body = A.Let(f"t{index}", draw(num_terms()), step) if draw(st.booleans()) else step
        if draw(st.booleans()):
            body = A.LetBind(f"s{index}", value, body)
    return body


@st.composite
def case_ladders(draw):
    """Case-heavy: nested sums with Ret branches and shared scrutinees."""
    rungs = draw(st.integers(1, 5))
    term = A.Ret(draw(num_terms()))
    for index in range(rungs):
        injected = draw(num_terms())
        scrutinee = (
            A.Inl(injected, NUM) if draw(st.booleans()) else A.Inr(injected, NUM)
        )
        left = A.Ret(A.Var(f"c{index}"))
        term = A.Case(scrutinee, f"c{index}", left, f"d{index}", term)
    return term


@st.composite
def boxed_terms(draw):
    """Box/let-box round trips with randomized (finite) scales."""
    scale = draw(finite_grades())
    inner = draw(num_terms())
    boxed = A.Box(inner, scale)
    if draw(st.booleans()):
        return boxed
    use = A.Op("add", A.WithPair(A.Var("b"), draw(num_terms())))
    return A.LetBox("b", boxed, use)


@st.composite
def mixed_terms(draw):
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return draw(binder_chains())
    if kind == 1:
        return draw(case_ladders())
    if kind == 2:
        return draw(boxed_terms())
    if kind == 3:
        parameter_type = draw(st.sampled_from((NUM, T.UNIT)))
        body = draw(num_terms())
        lam = A.Lambda("p", parameter_type, body)
        if draw(st.booleans()):
            return lam
        return A.App(lam, draw(num_terms()))
    left = draw(num_terms())
    right = draw(num_terms())
    value = A.TensorPair(left, right)
    return A.LetTensor("l", "r", value, A.Op("mul", A.TensorPair(A.Var("l"), A.Var("r"))))


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------


class TestDifferentialProperties:
    @given(term=num_terms())
    @settings(max_examples=120, deadline=None)
    def test_numeric_terms(self, term):
        assert_engines_agree(term, _SKELETON)

    @given(term=binder_chains())
    @settings(max_examples=80, deadline=None)
    def test_binder_heavy_chains(self, term):
        assert_engines_agree(term, _SKELETON)

    @given(term=case_ladders())
    @settings(max_examples=80, deadline=None)
    def test_case_heavy_ladders(self, term):
        assert_engines_agree(term, _SKELETON)

    @given(term=mixed_terms())
    @settings(max_examples=120, deadline=None)
    def test_mixed_terms(self, term):
        assert_engines_agree(term, _SKELETON)

    @given(term=mixed_terms(), rnd=finite_grades(), guard=finite_grades())
    @settings(max_examples=60, deadline=None)
    def test_mixed_terms_under_custom_config(self, term, rnd, guard):
        config = InferenceConfig(rnd_grade=rnd, case_guard_sensitivity=guard)
        assert_engines_agree(term, _SKELETON, config)


class TestSharedDagTerms:
    def test_shared_subterm_judgements_match(self):
        base = A.Op("add", A.WithPair(A.Var("x0"), A.Var("x1")))
        shared = base
        for _ in range(6):
            shared = A.Op("mul", A.TensorPair(shared, shared))
        term = A.intern_term(A.Rnd(shared))
        assert A.dag_size(term) < A.tree_size(term)
        assert_engines_agree(term, _SKELETON)

    def test_benchmark_families_match(self):
        from repro.perf.families import FAMILIES

        for family in FAMILIES.values():
            term, skeleton, _tree, _dag = family.instantiate(24)
            assert_engines_agree(term, skeleton)

    def test_benchsuite_builders_match(self):
        from repro.benchsuite import large

        term, skeleton = large.conditional_ladder_term(40)
        assert_engines_agree(A.intern_term(term), skeleton)
        term, skeleton = large.dag_fanout_term(12, block_operations=16)
        assert_engines_agree(A.intern_term(term), skeleton)
        term, skeleton = large.dag_cascade_term(6, block_operations=8)
        assert_engines_agree(A.intern_term(term), skeleton)
        term, skeleton = large.balanced_rnd_tree_term(64)
        assert_engines_agree(A.intern_term(term), skeleton)


class TestErrorAgreement:
    CASES = [
        ("unbound", A.Var("nowhere"), {}),
        ("rnd_non_num", A.Rnd(A.UnitVal()), {}),
        ("app_non_function", A.App(A.Const(1.0), A.Const(2.0)), {}),
        ("proj_non_with", A.Proj(1, A.Const(1.0)), {}),
        ("case_non_sum", A.Case(A.Const(1.0), "l", A.Ret(A.Var("l")), "r", A.Ret(A.Var("r"))), {}),
        ("letbox_non_bang", A.LetBox("v", A.Const(1.0), A.Var("v")), {}),
        ("letbind_non_monadic", A.LetBind("v", A.Const(1.0), A.Ret(A.Var("v"))), {}),
        (
            "lambda_too_sensitive",
            A.Lambda("p", NUM, A.Op("mul", A.TensorPair(A.Var("p"), A.Var("p")))),
            {},
        ),
        (
            "boxed_at_zero",
            A.LetBox("v", A.Box(A.Var("x0"), ZERO), A.Var("v")),
            _SKELETON,
        ),
        (
            "symbolic_box_scale",
            A.LetBox(
                "v",
                A.Box(A.Var("x0"), EPS),
                A.Op("mul", A.TensorPair(A.Var("v"), A.Var("v"))),
            ),
            _SKELETON,
        ),
        (
            "context_type_clash",
            A.Op(
                "mul",
                A.TensorPair(
                    A.Var("x0"),
                    A.Let("x0", A.UnitVal(), A.App(A.Lambda("u", T.UNIT, A.Var("x0")), A.Var("x0"))),
                ),
            ),
            _SKELETON,
        ),
    ]

    @pytest.mark.parametrize("name,term,skeleton", CASES, ids=[c[0] for c in CASES])
    def test_same_error_class_and_message(self, name, term, skeleton):
        interpreted = _run("interpreted", term, skeleton, None)
        compiled = _run("compiled", term, skeleton, None)
        assert interpreted == compiled or (
            interpreted[0] == compiled[0] == "ok"
        ), (interpreted, compiled)


# ---------------------------------------------------------------------------
# int64 overflow: the vectorized path must certify and fall back exactly
# ---------------------------------------------------------------------------

_WIDE_SYMBOLS = tuple(f"ovf{i}" for i in range(9))
for _name in _WIDE_SYMBOLS:
    if not DEFAULT_REGISTRY.known(_name):
        DEFAULT_REGISTRY.register(_name, Fraction(1, 3))


def _wide_grade(coefficient: int) -> Grade:
    terms = {(): Fraction(coefficient)}
    for name in _WIDE_SYMBOLS:
        terms[(name,)] = Fraction(coefficient)
    return Grade(terms)


class TestInt64Overflow:
    @pytest.mark.skipif(not have_numpy(), reason="needs the vectorized lanes")
    def test_overflowing_products_take_the_fraction_fallback(self):
        # Two 10-lane grades with ~2^40 coefficients: their pointwise
        # product bound exceeds 2^62, so the vectorized kernels must refuse
        # to certify and route through exact Fraction lanes.
        big = 1 << 40
        g1 = _wide_grade(big)
        g2 = _wide_grade(big + 1)
        term = A.Box(A.Box(A.Var("x0"), g1), g2)
        before = packed_memo_stats()["frac_fallbacks"]
        result = assert_engines_agree(term, _SKELETON)
        after = packed_memo_stats()["frac_fallbacks"]
        assert after > before
        # The surviving sensitivity is the exact symbolic product.
        sens = result.context.sensitivity_of("x0")
        assert sens is g1 * g2

    @pytest.mark.skipif(not have_numpy(), reason="needs the vectorized lanes")
    def test_overflowing_sums_stay_exact(self):
        # Lanes of ~2**40 store as certified int64 vectors, but the add
        # kernel's cross-multiplication bound (mx_a * mx_b ~ 2**80) exceeds
        # the 2**62 certification, forcing the exact path.
        big = 1 << 40
        g1 = _wide_grade(big)
        g2 = _wide_grade(big + 3)
        # Shared variable under a tensor pair: the engine adds the two
        # boxed sensitivities.
        term = A.TensorPair(A.Box(A.Var("x0"), g1), A.Box(A.Var("x0"), g2))
        before = packed_memo_stats()["frac_fallbacks"]
        result = assert_engines_agree(term, _SKELETON)
        after = packed_memo_stats()["frac_fallbacks"]
        assert after > before
        assert result.context.sensitivity_of("x0") is g1 + g2


# ---------------------------------------------------------------------------
# Plan cache and stats plumbing
# ---------------------------------------------------------------------------


class TestPlanCache:
    def test_plans_are_cached_by_intern_id(self):
        term = A.intern_term(
            A.Rnd(A.Op("add", A.WithPair(A.Var("x0"), A.Var("x1"))))
        )
        first = plan_for(term)
        second = plan_for(term)
        assert first is second

    def test_stats_shape(self):
        clear_plan_memo()
        term = A.intern_term(A.Rnd(A.Var("x0")))
        plan_for(term)
        stats = compiled_memo_stats()
        assert stats["plans"]["entries"] >= 1
        assert stats["plans"]["capacity"] > 0
        packed = stats["packed"]
        for key in ("numpy", "vocabulary", "pack", "unpack", "vectorized_ops", "frac_fallbacks"):
            assert key in packed

    def test_memo_report_includes_compiled_block(self):
        from repro.analysis.cache import memo_report

        report = memo_report()
        assert "compiled" in report
        assert "plans" in report["compiled"]
        assert "packed" in report["compiled"]


class TestPurePythonFallback:
    def test_engines_agree_without_numpy(self):
        """With ``REPRO_NO_NUMPY=1`` the packed algebra runs on plain tuples
        of Python ints; the compiled engine must still match bit-for-bit."""
        import os
        import subprocess
        import sys

        script = (
            "from repro.core import ast as A\n"
            "from repro.core import types as T\n"
            "from repro.core.compiled import have_numpy\n"
            "from repro.core.inference import infer\n"
            "assert not have_numpy()\n"
            "skel = {'x0': T.NUM, 'x1': T.NUM}\n"
            "body = A.Rnd(A.Op('add', A.WithPair(A.Var('x0'), A.Var('x1'))))\n"
            "term = body\n"
            "for i in range(40):\n"
            "    term = A.LetBind(\n"
            "        f's{i}',\n"
            "        term,\n"
            "        A.Rnd(A.Op('mul', A.TensorPair(A.Var(f's{i}'), A.Var('x1')))),\n"
            "    )\n"
            "ri = infer(term, skel, memo=False, engine='interpreted')\n"
            "rc = infer(term, skel, memo=False, engine='compiled')\n"
            "assert ri.type == rc.type\n"
            "assert ri.context == rc.context\n"
            "for (ni, ti, si), (nc, tc, sc) in zip(\n"
            "    ri.context._entries(), rc.context._entries()\n"
            "):\n"
            "    assert ni == nc and ti == tc and si is sc\n"
            "print('NO_NUMPY_DIFFERENTIAL_OK')\n"
        )
        environment = dict(os.environ)
        environment["REPRO_NO_NUMPY"] = "1"
        environment["PYTHONPATH"] = "src"
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=environment,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        assert "NO_NUMPY_DIFFERENTIAL_OK" in completed.stdout


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            infer(A.Const(1.0), {}, engine="jit")

    def test_explicit_engines_agree_on_infinite_grades(self):
        term = A.LetBox(
            "v",
            A.Box(A.Var("x0"), INFINITY),
            A.Op("mul", A.TensorPair(A.Var("v"), A.Var("v"))),
        )
        assert_engines_agree(term, _SKELETON)

    def test_zero_and_one_scales_roundtrip(self):
        for scale in (ZERO, ONE, EPS):
            term = A.Box(A.Var("x0"), scale)
            assert_engines_agree(term, _SKELETON)
