"""Tests for the benchmark suite: the measured Λnum bounds reproduce Tables 3–5."""

from fractions import Fraction

import pytest

from repro.benchsuite import (
    Benchmark,
    benchmark_from_expression,
    horner_benchmark,
    matrix_multiply_benchmark,
    pairwise_sum_expression,
    poly50_benchmark,
    serial_sum_benchmark,
    table3_benchmarks,
    table4_benchmarks,
    table5_benchmarks,
)
from repro.benchsuite.fpbench import small_benchmark
from repro.benchsuite.runner import (
    render_rows,
    table1_rows,
    table2_rows,
    table3_rows,
    table4_rows,
    table5_rows,
)
from repro.frontend import expr as E

EPS64 = Fraction(1, 2**52)

#: Expected Λnum error grades (as multiples of eps) for every Table 3 benchmark.
TABLE3_EXPECTED_EPS = {
    "hypot": Fraction(5, 2),
    "x_by_xy": 2,
    "one_by_sqrtxx": Fraction(5, 2),
    "sqrt_add": Fraction(9, 2),
    "test02_sum8": 7,
    "nonlin1": 2,
    "test05_nonlin1": 2,
    "verhulst": 4,
    "predatorPrey": 7,
    "test06_sums4_sum1": 3,
    "test06_sums4_sum2": 3,
    "i4": 2,
    "Horner2": 2,
    "Horner2_with_error": 7,
    "Horner5": 5,
    "Horner10": 10,
    "Horner20": 20,
}


class TestTable3:
    @pytest.mark.parametrize("bench", table3_benchmarks(), ids=lambda b: b.name)
    def test_lnum_grade_matches_paper(self, bench):
        analysis = bench.analyze_lnum()
        expected = TABLE3_EXPECTED_EPS[bench.name] * EPS64
        assert analysis.rp_bound == expected

    @pytest.mark.parametrize("bench", table3_benchmarks(), ids=lambda b: b.name)
    def test_lnum_relative_error_matches_paper_to_print_precision(self, bench):
        analysis = bench.analyze_lnum()
        paper = bench.paper_bounds["lnum"]
        assert float(analysis.relative_error_bound) == pytest.approx(paper, rel=5e-3)

    def test_gappa_like_is_close_to_the_paper_column(self):
        # Spot-check a few rows where the paper's Gappa bound is a clean
        # multiple of eps; the re-implementation should land on the same value.
        expectations = {"x_by_xy": 1, "test02_sum8": 7, "Horner20": 20, "i4": 2}
        for name, multiple in expectations.items():
            result = small_benchmark(name).analyze_gappa_like()
            assert not result.failed
            assert result.relative_error == pytest.approx(multiple * float(EPS64), rel=0.6)

    def test_ratio_shape_lnum_within_factor_two_of_best_baseline(self):
        for benchmark in table3_benchmarks():
            analysis = benchmark.analyze_lnum()
            interval = benchmark.analyze_gappa_like()
            if interval is None or interval.failed:
                continue
            ratio = float(analysis.relative_error_bound) / float(interval.relative_error)
            assert ratio <= 2.1, benchmark.name

    def test_operation_counts_are_close_to_paper(self):
        for benchmark in table3_benchmarks():
            if benchmark.expression is None:
                continue
            assert abs(benchmark.operations - benchmark.paper_operations) <= 1, benchmark.name


class TestTable4:
    def test_horner_bounds_scale_linearly(self):
        for degree, expected in ((50, 50), (75, 75), (100, 100)):
            analysis = horner_benchmark(degree).analyze_lnum()
            assert analysis.rp_bound == expected * EPS64

    def test_matrix_multiply_bounds(self):
        for dimension, expected in ((4, 7), (16, 31)):
            analysis = matrix_multiply_benchmark(dimension).analyze_lnum()
            assert analysis.rp_bound == expected * EPS64

    def test_matrix_multiply_total_operation_count(self):
        benchmark = matrix_multiply_benchmark(16)
        assert benchmark.paper_operations == 7936

    def test_serial_sum_bound(self):
        analysis = serial_sum_benchmark(64).analyze_lnum()
        assert analysis.rp_bound == 63 * EPS64

    def test_poly50_matches_paper(self):
        analysis = poly50_benchmark(50).analyze_lnum()
        assert float(analysis.relative_error_bound) == pytest.approx(2.94e-13, rel=1e-2)

    def test_lnum_is_at_most_twice_the_textbook_bound(self):
        # The paper observes Λnum's bound equals the standard bound for Horner
        # and summation, and is within 2x for matrix multiplication.
        for benchmark in table4_benchmarks():
            std = benchmark.paper_bounds.get("std")
            if std is None:
                continue
            analysis = benchmark.analyze_lnum()
            assert float(analysis.relative_error_bound) <= 2.01 * std, benchmark.name

    def test_pairwise_and_serial_sums_get_the_same_lnum_bound(self):
        # The with-product metric makes addition 1-sensitive in each operand,
        # but independent rounding errors still accumulate additively through
        # let-bind, so pairwise and serial summation receive the *same* grade
        # (n-1)*eps — exactly as in Table 3 where sums4_sum1 and sums4_sum2
        # both get 6.66e-16.  (The textbook pairwise bound is logarithmic; see
        # the ablation benchmark for the comparison.)
        from repro.benchsuite.large import serial_sum_expression

        serial = benchmark_from_expression("serial16", serial_sum_expression(16))
        pairwise = benchmark_from_expression("pairwise16", pairwise_sum_expression(16))
        assert pairwise.analyze_lnum().rp_bound == serial.analyze_lnum().rp_bound


class TestTable5:
    EXPECTED = {
        "PythagoreanSum": 4,
        "HammarlingDistance": 4,  # paper reports 5 eps; see EXPERIMENTS.md
        "squareRoot3": 2,
        "squareRoot3Invalid": 2,
    }

    @pytest.mark.parametrize("bench", table5_benchmarks(), ids=lambda b: b.name)
    def test_conditional_grades(self, bench):
        analysis = bench.analyze_lnum()
        assert analysis.rp_bound == self.EXPECTED[bench.name] * EPS64

    @pytest.mark.parametrize("bench", table5_benchmarks(), ids=lambda b: b.name)
    def test_conditional_bounds_cover_both_branches(self, bench):
        """Evaluating either branch stays within the inferred bound."""
        from repro.analysis import check_error_soundness

        low_inputs = {name: Fraction(1, 7) for name in bench.skeleton}
        high_inputs = {name: Fraction(500) + Fraction(idx) for idx, name in enumerate(bench.skeleton)}
        for inputs in (low_inputs, high_inputs):
            report = check_error_soundness(bench.term, bench.skeleton, inputs)
            assert report.holds


class TestHarness:
    def test_table1_rows(self):
        rows = table1_rows()
        assert [row["format"] for row in rows] == ["binary32", "binary64", "binary128"]

    def test_table2_rows(self):
        rows = table2_rows()
        assert len(rows) == 4
        assert any(row["unit_roundoff"] == float(EPS64) for row in rows)

    def test_table3_rows_without_baselines(self):
        rows = table3_rows(run_baselines=False)
        assert len(rows) == 17
        assert all(row["lnum_bound"] > 0 for row in rows)

    def test_table5_rows(self):
        rows = table5_rows()
        assert {row["benchmark"] for row in rows} == set(TestTable5.EXPECTED)

    def test_render_rows_produces_a_table(self):
        text = render_rows(table1_rows())
        assert "binary64" in text and "-" * 3 in text

    def test_render_empty(self):
        assert render_rows([]) == "(no rows)"

    def test_benchmark_requires_term_or_expression(self):
        with pytest.raises(ValueError):
            Benchmark(name="broken", operations=0)

    def test_sample_inputs_respect_ranges(self):
        benchmark = small_benchmark("hypot")
        inputs = benchmark.sample_inputs(seed=3)
        for name, value in inputs.items():
            low, high = benchmark.input_ranges[name]
            assert low <= value <= high
