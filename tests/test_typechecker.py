"""Tests for the declarative-judgment checker (Theorems 6.2 / 6.3)."""

import pytest

from repro.core import ast as A
from repro.core import types as T
from repro.core.environment import Context
from repro.core.errors import TypeCheckError
from repro.core.grades import EPS
from repro.core.inference import infer
from repro.core.parser import parse_term
from repro.core.typechecker import check_judgment, derivable


def _square_term() -> A.Term:
    return parse_term("s = mul (x, x); rnd s")


class TestCheckJudgment:
    def test_minimal_judgment_is_derivable(self):
        context = Context.single("x", T.NUM, 2)
        check_judgment(_square_term(), context, T.Monadic(EPS, T.NUM))

    def test_weakening_higher_sensitivity_is_derivable(self):
        context = Context.single("x", T.NUM, 5)
        check_judgment(_square_term(), context, T.Monadic(EPS, T.NUM))

    def test_subsumption_larger_grade_is_derivable(self):
        context = Context.single("x", T.NUM, 2)
        check_judgment(_square_term(), context, T.Monadic(3 * EPS, T.NUM))

    def test_insufficient_sensitivity_rejected(self):
        context = Context.single("x", T.NUM, 1)
        with pytest.raises(TypeCheckError):
            check_judgment(_square_term(), context, T.Monadic(EPS, T.NUM))

    def test_smaller_grade_rejected(self):
        context = Context.single("x", T.NUM, 2)
        with pytest.raises(TypeCheckError):
            check_judgment(_square_term(), context, T.Monadic(0, T.NUM))

    def test_unbound_variable_rejected(self):
        with pytest.raises(Exception):
            check_judgment(_square_term(), Context.empty(), T.Monadic(EPS, T.NUM))

    def test_type_mismatch_rejected(self):
        context = Context.single("x", T.NUM, 2)
        with pytest.raises(TypeCheckError):
            check_judgment(_square_term(), context, T.NUM)

    def test_extra_unused_bindings_are_fine(self):
        context = Context.single("x", T.NUM, 2) + Context.single("unused", T.UNIT, 7)
        check_judgment(_square_term(), context, T.Monadic(EPS, T.NUM))

    def test_derivable_boolean_wrapper(self):
        context = Context.single("x", T.NUM, 2)
        assert derivable(_square_term(), context, T.Monadic(EPS, T.NUM))
        assert not derivable(_square_term(), context, T.Monadic(0, T.NUM))


class TestAlgorithmicSoundness:
    """Theorem 6.3: whatever inference computes is declaratively derivable."""

    @pytest.mark.parametrize(
        "source, skeleton",
        [
            ("rnd x", {"x": T.NUM}),
            ("s = mul (x, x); rnd s", {"x": T.NUM}),
            ("a = add (|x, y|); let t = rnd a; b = div (t, x); rnd b", {"x": T.NUM, "y": T.NUM}),
            ("if is_pos x then ret x else ret 1", {"x": T.NUM}),
            ("s = sqrt x; rnd s", {"x": T.NUM}),
        ],
    )
    def test_inferred_judgments_recheck(self, source, skeleton):
        term = parse_term(source)
        result = infer(term, skeleton)
        context = Context({name: (skeleton[name], result.context.sensitivity_of(name)) for name in skeleton})
        check_judgment(term, context, result.type)
