"""Tests for the interval substrate, the two baseline analysers and the
textbook bounds."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    FPTaylorLikeAnalyzer,
    GappaLikeAnalyzer,
    Interval,
    IntervalError,
    analyze_interval,
    analyze_taylor,
    dot_product_bound,
    gamma,
    horner_bound,
    horner_fma_bound,
    hull,
    matrix_multiply_bound,
    pairwise_summation_bound,
    serial_summation_bound,
)
from repro.floats.standard_model import StandardModel, relative_error
from repro.frontend import expr as E

fractions = st.fractions(min_value=Fraction(-100), max_value=Fraction(100))
positive = st.fractions(min_value=Fraction(1, 100), max_value=Fraction(100)).filter(lambda q: q > 0)

RANGE = {"x": (Fraction(1, 10), Fraction(1000)), "y": (Fraction(1, 10), Fraction(1000))}
EPS64 = Fraction(1, 2**52)


class TestInterval:
    def test_invalid_interval(self):
        with pytest.raises(IntervalError):
            Interval(Fraction(2), Fraction(1))

    def test_point_and_membership(self):
        box = Interval.point(3)
        assert box.contains(3) and not box.contains(4)
        assert box.width == 0

    def test_addition_and_subtraction(self):
        a, b = Interval(1, 2), Interval(10, 20)
        assert (a + b).low == 11 and (a + b).high == 22
        assert (b - a).low == 8 and (b - a).high == 19

    def test_multiplication_handles_signs(self):
        a = Interval(-2, 3)
        b = Interval(-5, 4)
        product = a * b
        assert product.low == -15 and product.high == 12

    def test_division(self):
        assert (Interval(1, 2) / Interval(2, 4)).low == Fraction(1, 4)
        with pytest.raises(IntervalError):
            Interval(1, 2) / Interval(-1, 1)

    def test_sqrt_encloses(self):
        box = Interval(2, 3).sqrt()
        assert box.low * box.low <= 2 and 3 <= box.high * box.high

    def test_magnitude_mignitude(self):
        box = Interval(-3, 2)
        assert box.magnitude() == 3
        assert box.mignitude() == 0
        assert Interval(2, 5).mignitude() == 2

    def test_join_and_hull(self):
        assert Interval(0, 1).join(Interval(5, 6)).high == 6
        assert hull([Interval(0, 1), Interval(-2, 0)]).low == -2

    def test_widen_models_one_rounding(self):
        box = Interval(1, 2).widen(EPS64)
        assert box.low < 1 and box.high > 2

    def test_scale_negative(self):
        box = Interval(1, 2).scale(-1)
        assert box.low == -2 and box.high == -1

    @given(a=fractions, b=fractions, c=fractions, d=fractions, x=fractions, y=fractions)
    @settings(max_examples=40, deadline=None)
    def test_containment_soundness(self, a, b, c, d, x, y):
        """Interval arithmetic contains the pointwise results."""
        left = Interval(min(a, b), max(a, b))
        right = Interval(min(c, d), max(c, d))
        px = min(max(x, left.low), left.high)
        py = min(max(y, right.low), right.high)
        assert (left + right).contains(px + py)
        assert (left * right).contains(px * py)
        assert (left - right).contains(px - py)


class TestGappaLikeAnalyzer:
    def test_single_addition_bound(self):
        result = analyze_interval(E.Add(E.Var("x"), E.Var("y")), RANGE)
        assert not result.failed
        assert EPS64 <= result.relative_error <= 2 * EPS64

    def test_hypot_matches_paper_scale(self):
        expr = E.Sqrt(E.Add(E.Mul(E.Var("x"), E.Var("x")), E.Mul(E.Var("y"), E.Var("y"))))
        result = analyze_interval(expr, RANGE)
        assert not result.failed
        assert result.relative_error <= 3 * EPS64

    def test_division_bound(self):
        expr = E.Div(E.Var("x"), E.Add(E.Var("x"), E.Var("y")))
        result = analyze_interval(expr, RANGE)
        assert not result.failed
        assert result.relative_error <= 4 * EPS64

    def test_input_errors_are_propagated(self):
        expr = E.Add(E.Var("x"), E.Var("y"))
        without = analyze_interval(expr, RANGE)
        with_errors = analyze_interval(expr, RANGE, input_errors={"x": EPS64, "y": EPS64})
        assert with_errors.relative_error > without.relative_error

    def test_subtraction_fails(self):
        result = analyze_interval(E.Sub(E.Var("x"), E.Var("y")), RANGE)
        assert result.failed

    def test_conditional_fails(self):
        expr = E.Cond(E.Comparison(">", E.Var("x"), E.Var("y")), E.Var("x"), E.Var("y"))
        assert analyze_interval(expr, RANGE).failed

    def test_missing_range_fails(self):
        result = analyze_interval(E.Add(E.Var("x"), E.Var("z")), RANGE)
        assert result.failed

    @given(
        x=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        y=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_bound_is_sound_for_sampled_inputs(self, x, y):
        """The certified relative error dominates the observed error at sample
        points (inputs are binary64 values, as the analyses assume)."""
        x, y = Fraction(x), Fraction(y)
        expr = E.Div(E.Add(E.Mul(E.Var("x"), E.Var("x")), E.Var("y")), E.Var("y"))
        ranges = {"x": (x, x), "y": (y, y)}
        result = analyze_interval(expr, ranges)
        assert not result.failed
        exact = E.evaluate_exact(expr, {"x": x, "y": y})
        approx = E.evaluate_fp(expr, {"x": x, "y": y}, StandardModel())
        assert relative_error(exact, approx) <= result.relative_error


class TestFPTaylorLikeAnalyzer:
    def test_straight_line_bound(self):
        result = analyze_taylor(E.Add(E.Var("x"), E.Var("y")), RANGE)
        assert not result.failed
        assert result.relative_error >= EPS64

    def test_blows_up_on_horner_style_ranges(self):
        # With all variables in [0.1, 1000] the ratio sup|error| / inf|f| is
        # astronomically loose -- the same qualitative behaviour as FPTaylor's
        # Horner rows in Table 3.
        from repro.benchsuite.large import horner_fma_expression

        expr = horner_fma_expression(5)
        ranges = {name: (Fraction(1, 10), Fraction(1000)) for name in E.free_variables(expr)}
        result = analyze_taylor(expr, ranges)
        assert result.failed or result.relative_error > Fraction(1, 10**6)

    def test_conditional_fails(self):
        expr = E.Cond(E.Comparison(">", E.Var("x"), E.Var("y")), E.Var("x"), E.Var("y"))
        assert analyze_taylor(expr, RANGE).failed

    def test_input_errors_increase_bound(self):
        expr = E.Mul(E.Var("x"), E.Var("y"))
        without = analyze_taylor(expr, RANGE)
        with_errors = analyze_taylor(expr, RANGE, input_errors={"x": EPS64})
        assert with_errors.relative_error > without.relative_error

    @given(
        x=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        y=st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=20, deadline=None)
    def test_bound_is_sound_on_point_ranges(self, x, y):
        x, y = Fraction(x), Fraction(y)
        expr = E.Add(E.Mul(E.Var("x"), E.Var("x")), E.Var("y"))
        ranges = {"x": (x, x), "y": (y, y)}
        result = analyze_taylor(expr, ranges)
        assert not result.failed
        exact = E.evaluate_exact(expr, {"x": x, "y": y})
        approx = E.evaluate_fp(expr, {"x": x, "y": y}, StandardModel())
        assert relative_error(exact, approx) <= result.relative_error


class TestStandardBounds:
    def test_gamma(self):
        u = Fraction(1, 2**52)
        assert gamma(1, u) == u / (1 - u)
        with pytest.raises(ValueError):
            gamma(2**53, u)

    def test_horner_bounds(self):
        assert horner_fma_bound(50) == gamma(50, EPS64)
        assert horner_bound(50) == gamma(100, EPS64)
        assert float(horner_fma_bound(50)) == pytest.approx(1.11e-14, rel=1e-2)

    def test_summation_bounds(self):
        assert serial_summation_bound(1024) == gamma(1023, EPS64)
        assert float(serial_summation_bound(1024)) == pytest.approx(2.27e-13, rel=1e-2)
        assert serial_summation_bound(1) == 0
        assert pairwise_summation_bound(1024) == gamma(10, EPS64)

    def test_matrix_multiply_bounds(self):
        assert matrix_multiply_bound(64) == dot_product_bound(64)
        assert float(matrix_multiply_bound(64)) == pytest.approx(1.42e-14, rel=1e-2)

    def test_paper_table4_std_column(self):
        expectations = {
            50: 1.11e-14,
            75: 1.665e-14,
            100: 2.22e-14,
        }
        for degree, value in expectations.items():
            assert float(horner_fma_bound(degree)) == pytest.approx(value, rel=2e-2)
