"""Tests for the small-step operational semantics (Fig. 3) and its refinements."""

from fractions import Fraction

import pytest

from repro.core import ast as A
from repro.core.errors import EvaluationError
from repro.core.parser import parse_term
from repro.core.semantics import (
    evaluate,
    fp_config,
    ideal_config,
    is_normal_form,
    normalize,
    run_monadic,
    step,
    step_fp,
    step_ideal,
)
from repro.core.semantics.values import NumV


def _closed(source: str, **values) -> A.Term:
    term = parse_term(source)
    substitution = {name: A.Const(value) for name, value in values.items()}
    return A.substitute(term, substitution)


class TestPureStepRelation:
    def test_beta_reduction(self):
        term = A.App(A.Lambda("x", None, A.Var("x")), A.Const(1))
        stepped = step(term)
        assert isinstance(stepped, A.Const) and stepped.value == 1

    def test_projection(self):
        term = A.Proj(1, A.WithPair(A.Const(1), A.Const(2)))
        assert step(term).value == 1

    def test_operation_step(self):
        term = A.Op("add", A.WithPair(A.Const(1), A.Const(2)))
        stepped = step(term)
        assert isinstance(stepped, A.Const) and stepped.value == 3

    def test_let_substitutes_value(self):
        term = A.Let("x", A.Const(5), A.Var("x"))
        assert step(term).value == 5

    def test_let_steps_inside_first(self):
        term = A.Let("x", A.Op("add", A.WithPair(A.Const(1), A.Const(1))), A.Var("x"))
        stepped = step(term)
        assert isinstance(stepped, A.Let)
        assert isinstance(stepped.bound, A.Const)

    def test_let_bind_of_ret(self):
        term = A.LetBind("x", A.Ret(A.Const(2)), A.Ret(A.Var("x")))
        stepped = step(term)
        assert isinstance(stepped, A.Ret)

    def test_let_bind_associativity(self):
        inner = A.LetBind("x", A.Rnd(A.Const(1)), A.Ret(A.Var("x")))
        term = A.LetBind("y", inner, A.Ret(A.Var("y")))
        stepped = step(term)
        assert isinstance(stepped, A.LetBind)
        assert isinstance(stepped.value, A.Rnd)

    def test_rnd_is_blocked_without_refinement(self):
        term = A.Rnd(A.Const(1))
        assert step(term) is None
        assert A.is_value(term)

    def test_case_steps(self):
        term = A.Case(A.true_value(), "a", A.Const(1), "b", A.Const(2))
        assert step(term).value == 1

    def test_tensor_elimination(self):
        term = A.LetTensor("a", "b", A.TensorPair(A.Const(1), A.Const(2)), A.Var("b"))
        assert step(term).value == 2

    def test_box_elimination(self):
        term = A.LetBox("a", A.Box(A.Const(3), 2), A.Var("a"))
        assert step(term).value == 3

    def test_values_do_not_step(self):
        assert step(A.Const(1)) is None
        assert step(A.Lambda("x", None, A.Var("x"))) is None


class TestRefinedStepRelations:
    def test_ideal_rnd_steps_to_ret(self):
        stepped = step_ideal(A.Rnd(A.Const("0.1")))
        assert isinstance(stepped, A.Ret)
        assert stepped.value.value == Fraction(1, 10)

    def test_fp_rnd_rounds(self):
        stepped = step_fp(A.Rnd(A.Const("0.1")))
        assert isinstance(stepped, A.Ret)
        assert stepped.value.value != Fraction(1, 10)
        assert stepped.value.value > Fraction(1, 10)  # round towards +inf

    def test_normalize_to_ret(self):
        term = _closed("s = mul (x, x); rnd s", x="0.5")
        normal, steps = normalize(term, step_ideal)
        assert is_normal_form(normal, refined=True)
        assert steps > 0

    def test_termination_of_let_bind_chains(self):
        term = _closed("s = mul (x, x); let t = rnd s; u = add (|t, 1|); rnd u", x=2)
        normal, steps = normalize(term, step_ideal)
        assert isinstance(normal, A.Ret)
        assert normal.value.value == Fraction(5)

    def test_small_step_agrees_with_big_step_ideal(self):
        source = "a = add (|x, y|); let t = rnd a; b = mul (t, t); rnd b"
        term = _closed(source, x="0.1", y="0.2")
        normal, _ = normalize(term, step_ideal)
        big = run_monadic(parse_term(source), {"x": NumV(Fraction("0.1")), "y": NumV(Fraction("0.2"))}, ideal_config())
        assert normal.value.value == big

    def test_small_step_agrees_with_big_step_fp(self):
        source = "a = add (|x, y|); let t = rnd a; b = mul (t, t); rnd b"
        term = _closed(source, x="0.1", y="0.2")
        normal, _ = normalize(term, step_fp)
        big = run_monadic(parse_term(source), {"x": NumV(Fraction("0.1")), "y": NumV(Fraction("0.2"))}, fp_config())
        assert normal.value.value == big

    def test_preservation_of_evaluation_result(self):
        # Stepping once does not change the final ideal value (Lemma 4.15).
        term = _closed("s = mul (x, x); rnd s", x="0.7")
        stepped = step_ideal(term)
        first = normalize(term, step_ideal)[0].value.value
        second = normalize(stepped, step_ideal)[0].value.value
        assert first == second

    def test_normalize_step_budget(self):
        term = _closed("s = mul (x, x); rnd s", x=2)
        with pytest.raises(EvaluationError):
            normalize(term, step_ideal, max_steps=1)
