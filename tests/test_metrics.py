"""Tests for the metric-space substrate: axioms, constructions, non-expansiveness."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import types as T
from repro.core.grades import EPS, INFINITY
from repro.metrics import (
    ABS_METRIC,
    CoproductSpace,
    DiscreteMetric,
    FunctionSpace,
    NeighborhoodSpace,
    ProductSpace,
    RP_METRIC,
    RelativeErrorDistance,
    ScaledSpace,
    SingletonSpace,
    TensorSpace,
    UlpDistance,
    is_infinite,
    is_non_expansive,
    space_of_type,
)

positive = st.fractions(min_value=Fraction(1, 1000), max_value=Fraction(1000)).filter(lambda q: q > 0)
reals = st.fractions(min_value=Fraction(-1000), max_value=Fraction(1000))


def _upper(metric, a, b) -> Fraction:
    low, high = metric.distance_enclosure(a, b)
    assert not is_infinite(high)
    return Fraction(high)


class TestRPMetricAxioms:
    @given(x=positive)
    @settings(max_examples=40, deadline=None)
    def test_reflexivity(self, x):
        low, high = RP_METRIC.distance_enclosure(x, x)
        assert low == 0 and high == 0

    @given(x=positive, y=positive)
    @settings(max_examples=40, deadline=None)
    def test_symmetry(self, x, y):
        # The true distance is symmetric; the rational enclosures of the two
        # directions may differ by (at most) their width.
        forward_low, forward_high = RP_METRIC.distance_enclosure(x, y)
        backward_low, backward_high = RP_METRIC.distance_enclosure(y, x)
        slack = Fraction(1, 10**25)
        assert Fraction(forward_high) <= Fraction(backward_high) + slack
        assert Fraction(backward_high) <= Fraction(forward_high) + slack
        assert Fraction(forward_low) <= Fraction(backward_high)
        assert Fraction(backward_low) <= Fraction(forward_high)

    @given(x=positive, y=positive, z=positive)
    @settings(max_examples=40, deadline=None)
    def test_triangle_inequality(self, x, y, z):
        direct_low, _ = RP_METRIC.distance_enclosure(x, z)
        _, via_y_1 = RP_METRIC.distance_enclosure(x, y)
        _, via_y_2 = RP_METRIC.distance_enclosure(y, z)
        assert Fraction(direct_low) <= Fraction(via_y_1) + Fraction(via_y_2)

    def test_negative_values_are_outside_the_carrier(self):
        assert not RP_METRIC.contains(Fraction(-1))
        assert not RP_METRIC.contains(Fraction(0))
        low, high = RP_METRIC.distance_enclosure(Fraction(-1), Fraction(1))
        assert is_infinite(high)

    def test_within_and_exceeds(self):
        x = Fraction(1)
        y = x * (1 + Fraction(1, 2**52))
        assert RP_METRIC.within(x, y, Fraction(1, 2**51))
        assert RP_METRIC.exceeds(x, y, Fraction(1, 2**54))


class TestOtherNumericMetrics:
    @given(x=reals, y=reals)
    @settings(max_examples=40, deadline=None)
    def test_absolute_metric(self, x, y):
        assert _upper(ABS_METRIC, x, y) == abs(x - y)

    def test_relative_error_distance_is_asymmetric(self):
        metric = RelativeErrorDistance()
        assert _upper(metric, Fraction(1), Fraction(2)) == 1
        assert _upper(metric, Fraction(2), Fraction(1)) == Fraction(1, 2)

    def test_relative_error_not_a_metric_triangle_fails(self):
        # Documented failure: relative error violates the triangle inequality
        # (one reason the paper adopts Olver's RP metric instead).
        metric = RelativeErrorDistance()
        x, y, z = Fraction(1), Fraction(2), Fraction(3)
        direct = _upper(metric, x, z)
        via = _upper(metric, x, y) + _upper(metric, y, z)
        assert direct > via

    def test_ulp_distance(self):
        metric = UlpDistance()
        assert _upper(metric, Fraction(1), Fraction(1) + Fraction(1, 2**52)) == 1

    def test_discrete_metric(self):
        metric = DiscreteMetric()
        assert _upper(metric, "a", "a") == 0
        assert is_infinite(metric.distance_enclosure("a", "b")[1])


class TestConstructions:
    def test_singleton(self):
        space = SingletonSpace()
        assert space.contains("*")
        assert _upper(space, "*", "*") == 0

    def test_product_uses_max(self):
        space = ProductSpace(ABS_METRIC, ABS_METRIC)
        assert _upper(space, (0, 0), (1, 3)) == 3

    def test_tensor_uses_sum(self):
        space = TensorSpace(ABS_METRIC, ABS_METRIC)
        assert _upper(space, (0, 0), (1, 3)) == 4

    def test_coproduct_same_injection(self):
        space = CoproductSpace(ABS_METRIC, ABS_METRIC)
        assert _upper(space, ("inl", 1), ("inl", 3)) == 2

    def test_coproduct_different_injections_are_infinitely_apart(self):
        space = CoproductSpace(ABS_METRIC, ABS_METRIC)
        assert is_infinite(space.distance_enclosure(("inl", 1), ("inr", 1))[1])

    def test_scaled_space(self):
        space = ScaledSpace(3, ABS_METRIC)
        assert _upper(space, 0, 2) == 6

    def test_scaled_space_zero_times_infinity(self):
        space = ScaledSpace(0, DiscreteMetric())
        low, high = space.distance_enclosure("a", "b")
        assert high == 0

    def test_scaled_space_infinite_factor(self):
        space = ScaledSpace(INFINITY, ABS_METRIC)
        assert is_infinite(space.distance_enclosure(0, 1)[1])
        assert space.distance_enclosure(1, 1)[1] == 0

    def test_neighborhood_carrier(self):
        space = NeighborhoodSpace(EPS, RP_METRIC)
        x = Fraction(1, 3)
        good = (x, x * (1 + Fraction(1, 2**53)))
        bad = (x, x * 2)
        assert space.contains(good)
        assert not space.contains(bad)

    def test_neighborhood_metric_compares_ideal_components(self):
        space = NeighborhoodSpace(INFINITY, ABS_METRIC)
        assert _upper(space, (1, 100), (3, -100)) == 2

    def test_function_space_sup_over_probes(self):
        space = FunctionSpace(ABS_METRIC, ABS_METRIC, probes=[0, 1, 2])
        f = lambda x: x
        g = lambda x: x + x
        assert _upper(space, f, g) == 2


class TestTypeInterpretation:
    def test_num(self):
        assert space_of_type(T.NUM) is RP_METRIC

    def test_monadic_type(self):
        space = space_of_type(T.Monadic(EPS, T.NUM))
        assert isinstance(space, NeighborhoodSpace)
        assert space.grade == EPS

    def test_nested_type(self):
        tau = T.Bang(2, T.TensorProduct(T.NUM, T.NUM))
        space = space_of_type(tau)
        assert isinstance(space, ScaledSpace)
        assert isinstance(space.inner, TensorSpace)

    def test_with_product_metric(self):
        space = space_of_type(T.WithProduct(T.NUM, T.NUM))
        a = (Fraction(1), Fraction(1))
        b = (Fraction(2), Fraction(1))
        low, high = space.distance_enclosure(a, b)
        assert high > 0


class TestNonExpansiveness:
    """Olver's properties: the primitive operations are non-expansive for RP."""

    pairs = st.tuples(positive, positive)

    #: Slack absorbing the (tiny) width of the rational log enclosures when
    #: the input and output distances coincide exactly.
    _SLACK = Fraction(1, 10**25)

    @given(a=pairs, b=pairs)
    @settings(max_examples=40, deadline=None)
    def test_addition_non_expansive_for_with_metric(self, a, b):
        space = ProductSpace(RP_METRIC, RP_METRIC)
        _, in_high = space.distance_enclosure(a, b)
        _, out_high = RP_METRIC.distance_enclosure(a[0] + a[1], b[0] + b[1])
        assert Fraction(out_high) <= Fraction(in_high) + self._SLACK

    @given(a=pairs, b=pairs)
    @settings(max_examples=40, deadline=None)
    def test_multiplication_non_expansive_for_tensor_metric(self, a, b):
        space = TensorSpace(RP_METRIC, RP_METRIC)
        _, in_high = space.distance_enclosure(a, b)
        _, out_high = RP_METRIC.distance_enclosure(a[0] * a[1], b[0] * b[1])
        assert Fraction(out_high) <= Fraction(in_high) + self._SLACK

    @given(a=pairs, b=pairs)
    @settings(max_examples=40, deadline=None)
    def test_division_non_expansive_for_tensor_metric(self, a, b):
        space = TensorSpace(RP_METRIC, RP_METRIC)
        _, in_high = space.distance_enclosure(a, b)
        _, out_high = RP_METRIC.distance_enclosure(a[0] / a[1], b[0] / b[1])
        assert Fraction(out_high) <= Fraction(in_high) + self._SLACK

    def test_non_expansiveness_helper_on_distinct_ratios(self):
        space = ProductSpace(RP_METRIC, RP_METRIC)
        func = lambda pair: pair[0] + pair[1]
        probe_pairs = [((Fraction(1), Fraction(2)), (Fraction(3), Fraction(2)))]
        assert is_non_expansive(func, space, RP_METRIC, probe_pairs)

    @given(x=positive, y=positive)
    @settings(max_examples=40, deadline=None)
    def test_sqrt_is_half_sensitive(self, x, y):
        from repro.floats.exactmath import sqrt_round

        scaled_domain = ScaledSpace(Fraction(1, 2), RP_METRIC)
        func = lambda value: sqrt_round(value, 200, "RN")
        # d(sqrt x, sqrt y) <= (1/2) d(x, y) up to the 2^-200 rounding slack.
        _, out_high = RP_METRIC.distance_enclosure(func(x), func(y))
        in_low, _ = scaled_domain.distance_enclosure(x, y)
        # Slack: the 2^-200 sqrt rounding plus the width of the rational log
        # enclosures (~1e-40 when the ratio needs ln2 argument reduction).
        assert Fraction(out_high) <= Fraction(in_low) + Fraction(1, 10**30)

    def test_multiplication_is_not_non_expansive_for_max_metric(self):
        # The reason mul takes a tensor pair: squaring doubles RP distances.
        space = ProductSpace(RP_METRIC, RP_METRIC)
        func = lambda pair: pair[0] * pair[1]
        a = (Fraction(1), Fraction(1))
        b = (Fraction(2), Fraction(2))
        assert not is_non_expansive(func, space, RP_METRIC, [(a, b)])
