"""Tests for the ``repro serve`` analysis service.

The protocol-independent :class:`AnalysisService` core is driven directly
with ``asyncio`` (admission, coalescing, deadlines, shedding are all
deterministic there: every request runs its synchronous admission path
before the first worker gets a turn), and a real TCP server on an
ephemeral port checks the wire protocol and the blocking client.
"""

import asyncio
import os
import threading

import pytest

from repro.analysis.batch import BatchItem, PoolHandle
from repro.analysis.cache import AnalysisCache
from repro.service import (
    AnalysisServer,
    AnalysisService,
    CacheFarm,
    PRIORITY_BULK,
    PRIORITY_INTERACTIVE,
    Scheduler,
    SchedulerBusy,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service.scheduler import Job

EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples", "programs"
)

FMA_SOURCE = """
function FMA (x: num) (y: num) (z: num) : M[eps]num {
  a = mul (x, y);
  b = add (|a, z|);
  rnd b
}
"""

HORNER_SOURCE = open(os.path.join(EXAMPLES, "horner2.lnum")).read()
HYPOT_FPCORE = open(os.path.join(EXAMPLES, "hypot.fpcore")).read()


def run(coroutine):
    return asyncio.run(coroutine)


async def make_service(**overrides):
    config = ServiceConfig(**{"jobs": 1, **overrides})
    service = AnalysisService(config)
    await service.start()
    return service


async def wait_until(predicate, timeout=10.0):
    """Poll ``predicate`` until true (admission involves executor hops)."""
    deadline = asyncio.get_event_loop().time() + timeout
    while not predicate():
        assert asyncio.get_event_loop().time() < deadline, "condition never held"
        await asyncio.sleep(0.005)


# ---------------------------------------------------------------------------
# Cache farm
# ---------------------------------------------------------------------------


class TestCacheFarm:
    KEY = "deadbeef" * 8

    def test_put_get_roundtrip(self):
        farm = CacheFarm(shards=4, entries_per_shard=8)
        farm.put(self.KEY, {"value": 1})
        assert farm.get(self.KEY) == {"value": 1}
        assert self.KEY in farm
        assert farm.get("0" * 64) is None

    def test_stats_shape_and_counters(self):
        farm = CacheFarm(shards=2, entries_per_shard=4)
        farm.put(self.KEY, 1)
        farm.get(self.KEY)
        farm.get("0" * 64)
        stats = farm.stats()
        assert stats["shards"] == 2
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["puts"] == 1
        assert len(stats["per_shard"]) == 2
        assert {"hits", "misses", "puts", "evictions", "entries"} <= set(
            stats["per_shard"][0]
        )

    def test_lru_eviction_is_counted(self):
        farm = CacheFarm(shards=1, entries_per_shard=2)
        for index in range(4):
            farm.put(f"{index:08x}" + "0" * 56, index)
        assert farm.entries == 2
        assert farm.stats()["evictions"] == 2

    def test_disk_tier_promotion(self, tmp_path):
        disk = AnalysisCache(directory=str(tmp_path))
        farm = CacheFarm(shards=2, entries_per_shard=4, disk=disk)
        farm.put(self.KEY, "persisted")
        # A fresh farm over the same directory misses memory, hits disk.
        rebooted = CacheFarm(shards=2, entries_per_shard=4, disk=AnalysisCache(directory=str(tmp_path)))
        assert rebooted.get(self.KEY) == "persisted"
        assert rebooted.disk_hits == 1
        # And the value was promoted: the second read is a memory hit.
        assert rebooted.get(self.KEY) == "persisted"
        assert rebooted.disk_hits == 1
        assert "disk" in rebooted.stats()


# ---------------------------------------------------------------------------
# Bounded disk cache (satellite)
# ---------------------------------------------------------------------------


class TestBoundedDiskCache:
    def test_entry_budget_evicts_oldest_first(self, tmp_path):
        cache = AnalysisCache(directory=str(tmp_path), disk_max_entries=3, disk_max_bytes=None)
        for index in range(5):
            cache.put(f"key{index}", list(range(50)))
            os.utime(
                os.path.join(str(tmp_path), f"key{index}.pkl"), (index, index)
            )
        entries, _bytes = cache.disk_usage()
        assert entries == 3
        survivors = {name for name in os.listdir(str(tmp_path)) if name.endswith(".pkl")}
        # key4 was written last (then clamped to mtime 4): the oldest two fell.
        assert survivors == {"key2.pkl", "key3.pkl", "key4.pkl"}
        assert cache.disk_evictions >= 2

    def test_byte_budget(self, tmp_path):
        cache = AnalysisCache(
            directory=str(tmp_path), disk_max_entries=None, disk_max_bytes=2048
        )
        for index in range(20):
            cache.put(f"key{index}", b"x" * 512)
        _entries, total = cache.disk_usage()
        assert total <= 2048

    def test_unbounded_when_disabled(self, tmp_path):
        cache = AnalysisCache(
            directory=str(tmp_path), disk_max_entries=None, disk_max_bytes=None
        )
        for index in range(10):
            cache.put(f"key{index}", index)
        assert cache.disk_usage()[0] == 10

    def test_read_refreshes_mtime(self, tmp_path):
        cache = AnalysisCache(directory=str(tmp_path), disk_max_entries=2, disk_max_bytes=None)
        cache.put("old", 1)
        path = os.path.join(str(tmp_path), "old.pkl")
        os.utime(path, (1, 1))
        before = os.stat(path).st_mtime
        fresh = AnalysisCache(directory=str(tmp_path))
        assert fresh.get("old") == 1
        assert os.stat(path).st_mtime > before


# ---------------------------------------------------------------------------
# Scheduler
# ---------------------------------------------------------------------------


def _job(key, priority=PRIORITY_INTERACTIVE, deadline=None, source=FMA_SOURCE):
    return Job(
        key=key,
        item=BatchItem(name=key, kind="lnum", source=source),
        priority=priority,
        deadline=deadline,
    )


class TestScheduler:
    def test_full_queue_sheds(self):
        async def scenario():
            scheduler = Scheduler(pool=PoolHandle(1), queue_size=2)
            # Workers never started: the queue only fills.
            scheduler.submit(_job("a"))
            scheduler.submit(_job("b"))
            with pytest.raises(SchedulerBusy):
                scheduler.submit(_job("c"))
            assert scheduler.counters["shed"] == 1
            assert scheduler.counters["submitted"] == 2

        run(scenario())

    def test_priority_lane_ordering(self):
        async def scenario():
            scheduler = Scheduler(pool=PoolHandle(1), queue_size=8)
            scheduler.submit(_job("bulk1", priority=PRIORITY_BULK))
            scheduler.submit(_job("fast", priority=PRIORITY_INTERACTIVE))
            scheduler.submit(_job("bulk2", priority=PRIORITY_BULK))
            order = []
            while not scheduler._queue.empty():
                _p, _s, job = scheduler._queue.get_nowait()
                order.append(job.key)
            # Interactive jumps the bulk lane; bulk stays FIFO.
            assert order == ["fast", "bulk1", "bulk2"]
            assert scheduler.lane_counters == {"interactive": 1, "bulk": 2}

        run(scenario())

    def test_expired_deadline_never_runs(self):
        async def scenario():
            scheduler = Scheduler(pool=PoolHandle(1), queue_size=8)
            await scheduler.start()
            import time

            future = scheduler.submit(_job("late", deadline=time.monotonic() - 1.0))
            from repro.service import DeadlineExceeded

            with pytest.raises(DeadlineExceeded):
                await future
            assert scheduler.counters["expired"] == 1
            assert scheduler.counters["completed"] == 0
            await scheduler.stop()

        run(scenario())

    def test_deadline_governs_the_queue_not_running_work(self, monkeypatch):
        # The job deadline drops *queued* work; once dispatched, a job
        # runs to completion and resolves with its report even past the
        # deadline (client-facing timeouts are the server's wait_for),
        # and the worker keeps serving afterwards.
        import time as time_module

        def slow_then_fast(item, config, cache, memo=None, memo_entries=None, engine="auto"):
            if item.name == "slow":
                time_module.sleep(0.3)
            from repro.analysis.batch import _analyze_item

            return _analyze_item(item, config, cache, memo, memo_entries, engine)

        monkeypatch.setattr(
            "repro.service.scheduler.analyze_item", slow_then_fast
        )

        async def scenario():
            import time

            scheduler = Scheduler(pool=PoolHandle(1), queue_size=8)
            await scheduler.start()
            slow = await asyncio.wait_for(
                scheduler.submit(_job("slow", deadline=time.monotonic() + 0.05)),
                30,
            )
            assert slow.ok  # finished late, but finished — and is kept
            assert scheduler.counters["expired"] == 0
            report = await asyncio.wait_for(scheduler.submit(_job("next")), 30)
            assert report.ok
            assert scheduler.counters["completed"] == 2
            await scheduler.stop()

        run(scenario())

    def test_jobs_run_and_complete(self):
        async def scenario():
            scheduler = Scheduler(pool=PoolHandle(1), queue_size=8)
            await scheduler.start()
            report = await scheduler.submit(_job("ok"))
            assert report.ok and report.analyses[0].name == "FMA"
            assert scheduler.counters["completed"] == 1
            await scheduler.stop()

        run(scenario())


# ---------------------------------------------------------------------------
# Request normalization
# ---------------------------------------------------------------------------


class TestRequestKey:
    def test_formatting_is_normalized_away(self):
        async def scenario():
            service = await make_service()
            reformatted = FMA_SOURCE.replace("\n", "\n\n").replace("  ", "\t")
            assert service.request_key(FMA_SOURCE, "lnum") == service.request_key(
                reformatted, "lnum"
            )
            await service.stop()

        run(scenario())

    def test_distinct_programs_get_distinct_keys(self):
        async def scenario():
            service = await make_service()
            other = FMA_SOURCE.replace("mul", "div")
            assert service.request_key(FMA_SOURCE, "lnum") != service.request_key(
                other, "lnum"
            )
            await service.stop()

        run(scenario())

    def test_annotation_changes_the_key(self):
        async def scenario():
            # Same body, different declared error bound: these must never
            # share a cache entry (one satisfies its annotation, the other
            # violates it).
            service = await make_service()
            satisfied = "function f (x: num) : M[eps]num { rnd x }"
            violated = "function f (x: num) : M[0]num { rnd x }"
            assert service.request_key(satisfied, "lnum") != service.request_key(
                violated, "lnum"
            )
            first = await service.handle({"op": "analyze", "source": satisfied})
            second = await service.handle({"op": "analyze", "source": violated})
            assert not second["cached"]
            assert first["report"]["functions"][0]["annotation_satisfied"] is True
            assert second["report"]["functions"][0]["annotation_satisfied"] is False
            await service.stop()

        run(scenario())

    def test_empty_or_comment_only_sources_do_not_collide(self):
        async def scenario():
            service = await make_service()
            key_a = service.request_key("# only a comment, program A", "lnum")
            key_b = service.request_key("# a different comment, program B", "lnum")
            assert key_a != key_b
            await service.stop()

        run(scenario())

    def test_unparseable_sources_fall_back_to_source_key(self):
        async def scenario():
            service = await make_service()
            key1 = service.request_key("function broken (", "lnum")
            key2 = service.request_key("function broken (", "lnum")
            key3 = service.request_key("function broken ((", "lnum")
            assert key1 == key2 != key3
            await service.stop()

        run(scenario())


# ---------------------------------------------------------------------------
# The service core: coalescing, caching, deadlines, shedding
# ---------------------------------------------------------------------------


class TestAnalysisService:
    def test_concurrent_duplicates_coalesce_to_one_inference(self):
        async def scenario():
            service = await make_service()
            responses = await asyncio.gather(
                *[
                    service.handle({"op": "analyze", "source": FMA_SOURCE})
                    for _ in range(8)
                ]
            )
            assert [response["status"] for response in responses] == ["ok"] * 8
            # The coalescing contract: N duplicates, exactly one inference.
            # (A duplicate that is admitted after the shared job already
            # finished is served from the cache instead of coalescing —
            # either way no second inference may ever be scheduled.)
            assert service.counters["inferences"] == 1
            assert service.counters["scheduled"] == 1
            assert (
                service.counters["coalesced"] + service.counters["cache_hits"] == 7
            )
            assert service.counters["coalesced"] >= 1
            riders = [r for r in responses if r["coalesced"] or r["cached"]]
            assert len(riders) == 7
            bounds = {
                response["report"]["functions"][0]["relative_error_bound"]
                for response in responses
            }
            assert len(bounds) == 1
            await service.stop()

        run(scenario())

    def test_repeat_request_is_served_from_cache(self):
        async def scenario():
            service = await make_service()
            first = await service.handle({"op": "analyze", "source": FMA_SOURCE})
            second = await service.handle({"op": "analyze", "source": FMA_SOURCE})
            assert not first["cached"] and second["cached"]
            # Formatting changes hit the same content-addressed entry.
            third = await service.handle(
                {"op": "analyze", "source": FMA_SOURCE + "\n\n"}
            )
            assert third["cached"]
            assert service.counters["inferences"] == 1
            assert service.counters["cache_hits"] == 2
            await service.stop()

        run(scenario())

    def test_shared_subexpressions_hit_the_judgement_memo_across_requests(self):
        # Two *different* programs with a common body: distinct request
        # keys (no farm hit, two inferences), but the second inference
        # reuses the first one's subterm judgements through the shared
        # cross-request memo — and /stats makes that observable.
        shared_body = (
            "  let [x1] = x;\n"
            "  a = mul (x1, x1);\n"
            "  b = add (|a, x1|);\n"
            "  rnd b\n"
        )
        source_a = "function SqA (x: ![3]num) : M[eps]num {\n" + shared_body + "}\n"
        source_b = "function SqB (x: ![3]num) : M[eps]num {\n" + shared_body + "}\n"

        async def scenario():
            service = await make_service()
            first = await service.handle({"op": "analyze", "source": source_a})
            hits_after_first = service.judgement_memo.hits
            second = await service.handle({"op": "analyze", "source": source_b})
            assert first["status"] == second["status"] == "ok"
            assert not second["cached"]
            assert service.counters["inferences"] == 2
            assert service.judgement_memo.hits > hits_after_first
            stats = service.stats()
            memo_block = stats["cache"]["judgement_memo"]
            assert memo_block["hits"] >= 1
            assert memo_block["entries"] <= memo_block["capacity"]
            # The process-wide memo occupancy report rides along.
            assert {"ast", "grades"} <= set(stats["memos"])
            await service.stop()

        run(scenario())

    def test_process_pool_service_disables_the_shared_memo(self):
        # jobs>1 runs inference in worker processes: the in-memory memo
        # cannot travel, so the service must not pretend it exists.
        service = AnalysisService(ServiceConfig(jobs=2))
        assert service.judgement_memo is None
        assert service.scheduler.judgement_memo is None
        assert "judgement_memo" not in service.farm.stats()

    def test_worker_reuses_the_admission_parse(self):
        async def scenario():
            service = await make_service()
            await service.handle({"op": "analyze", "source": FMA_SOURCE})
            stats = service._analysis_cache.parse_stats
            # Admission parsed once (miss) for key normalization; the
            # thread-mode worker must hit that memo, not re-parse.
            assert stats.misses == 1
            assert stats.hits >= 1
            await service.stop()

        run(scenario())

    def test_no_cache_bypasses_the_farm(self):
        async def scenario():
            service = await make_service()
            await service.handle({"op": "analyze", "source": FMA_SOURCE})
            again = await service.handle(
                {"op": "analyze", "source": FMA_SOURCE, "no_cache": True}
            )
            assert not again["cached"]
            assert service.counters["inferences"] == 2
            await service.stop()

        run(scenario())

    def test_no_cache_requests_do_not_coalesce(self):
        async def scenario():
            service = await make_service()
            responses = await asyncio.gather(
                service.handle({"op": "analyze", "source": FMA_SOURCE}),
                service.handle(
                    {"op": "analyze", "source": FMA_SOURCE, "no_cache": True}
                ),
            )
            assert [r["status"] for r in responses] == ["ok", "ok"]
            # The no_cache request must run its own inference (riding the
            # cached-path future would skip the fresh run it demanded),
            # and the cache-respecting one still populates the farm.
            assert service.counters["inferences"] == 2
            assert service.counters["coalesced"] == 0
            repeat = await service.handle({"op": "analyze", "source": FMA_SOURCE})
            assert repeat["cached"]
            await service.stop()

        run(scenario())

    def test_fpcore_requests(self):
        async def scenario():
            service = await make_service()
            response = await service.handle(
                {"op": "analyze", "source": HYPOT_FPCORE, "kind": "fpcore"}
            )
            assert response["status"] == "ok"
            assert response["report"]["functions"][0]["name"] == "hypot"
            await service.stop()

        run(scenario())

    def test_parse_failures_become_failed_reports_and_cache(self):
        async def scenario():
            service = await make_service()
            response = await service.handle(
                {"op": "analyze", "source": "function broken ("}
            )
            assert response["status"] == "ok"
            assert response["report"]["ok"] is False
            assert response["report"]["error"]
            repeat = await service.handle(
                {"op": "analyze", "source": "function broken ("}
            )
            assert repeat["cached"]
            await service.stop()

        run(scenario())

    def test_expired_deadline_returns_timeout(self):
        async def scenario():
            # Workers not started: the tiny deadline passes while queued.
            service = AnalysisService(ServiceConfig(jobs=1))
            response = await service.handle(
                {"op": "analyze", "source": FMA_SOURCE, "deadline_ms": 20}
            )
            assert response["status"] == "timeout" and response["code"] == 504
            assert service.counters["timeouts"] == 1
            await service.stop()

        run(scenario())

    def test_deadline_ms_zero_disables_the_deadline(self):
        async def scenario():
            # 0 means "no deadline", matching `repro serve --deadline 0` —
            # not "time out immediately".
            service = await make_service()
            response = await service.handle(
                {"op": "analyze", "source": FMA_SOURCE, "deadline_ms": 0}
            )
            assert response["status"] == "ok"
            await service.stop()

        run(scenario())

    def test_coalesced_waiter_honours_its_own_deadline(self):
        async def scenario():
            # Workers never started, so the owner's job sits in the queue
            # forever; a coalescing waiter with a tight deadline must still
            # get its 504 instead of inheriting the owner's budget.
            service = AnalysisService(ServiceConfig(jobs=1))
            owner = asyncio.ensure_future(
                service.handle({"op": "analyze", "source": FMA_SOURCE})
            )
            await wait_until(lambda: service._inflight)  # owner registered
            waiter = await service.handle(
                {"op": "analyze", "source": FMA_SOURCE, "deadline_ms": 20}
            )
            assert waiter["status"] == "timeout" and waiter["code"] == 504
            assert service.counters["coalesced"] == 1
            assert service.counters["timeouts"] == 1
            owner.cancel()
            try:
                await owner
            except asyncio.CancelledError:
                pass
            await service.stop()

        run(scenario())

    def test_disk_cache_is_shared_with_the_batch_engine(self, tmp_path):
        from repro.analysis.batch import BatchAnalyzer, BatchItem

        # Warm the directory through the batch engine ...
        engine = BatchAnalyzer(
            jobs=1, cache=AnalysisCache(directory=str(tmp_path))
        )
        engine.analyze_items(
            [BatchItem(name="fma", kind="lnum", source=FMA_SOURCE)]
        )

        async def scenario():
            # ... then a fresh service over the same directory serves the
            # exact same source text without inferring again.
            service = await make_service(cache_dir=str(tmp_path))
            response = await service.handle(
                {"op": "analyze", "source": FMA_SOURCE}
            )
            assert response["cached"], response
            assert service.counters["inferences"] == 0
            # And service-side inferences write the exact-text alias, so a
            # later batch over a new program starts warm too.
            other = FMA_SOURCE.replace("FMA", "FMB")
            await service.handle({"op": "analyze", "source": other})
            await service.stop()

        run(scenario())

        from repro.analysis.cache import source_key

        warm = AnalysisCache(directory=str(tmp_path))
        other = FMA_SOURCE.replace("FMA", "FMB")
        assert warm.get(source_key(other, "lnum", None)) is not None

    def test_late_completion_is_cached_for_retries(self, monkeypatch):
        # An inference that outlives its client's deadline still finishes;
        # its report must land in the cache so a retry is served instantly
        # instead of re-running (and re-timing-out) the same work.
        import time as time_module

        from repro.analysis.batch import _analyze_item

        def slow(item, config, cache, memo=None, memo_entries=None, engine="auto"):
            time_module.sleep(0.25)
            return _analyze_item(item, config, cache, memo, memo_entries, engine)

        monkeypatch.setattr("repro.service.scheduler.analyze_item", slow)

        async def scenario():
            service = await make_service()
            first = await service.handle(
                {"op": "analyze", "source": FMA_SOURCE, "deadline_ms": 50}
            )
            assert first["status"] == "timeout"
            # The work is still in flight: an immediate retry coalesces
            # onto it instead of scheduling a duplicate inference.
            riding = await service.handle({"op": "analyze", "source": FMA_SOURCE})
            assert riding["status"] == "ok" and riding["coalesced"]
            assert service.counters["scheduled"] == 1
            await wait_until(lambda: service.farm.entries > 0)
            retry = await service.handle({"op": "analyze", "source": FMA_SOURCE})
            assert retry["status"] == "ok" and retry["cached"]
            assert service.counters["inferences"] == 1
            await service.stop()

        run(scenario())

    def test_coalesced_waiter_extends_the_job_deadline(self):
        async def scenario():
            # Workers not started yet: the job waits in the queue past the
            # owner's 50 ms budget.  The coalescing waiter brings a much
            # longer budget, so once workers start, the job must still run
            # (instead of being dropped at the owner's deadline).
            service = AnalysisService(ServiceConfig(jobs=1))
            owner = asyncio.ensure_future(
                service.handle(
                    {"op": "analyze", "source": FMA_SOURCE, "deadline_ms": 50}
                )
            )
            await wait_until(lambda: service._inflight)
            waiter = asyncio.ensure_future(
                service.handle(
                    {"op": "analyze", "source": FMA_SOURCE, "deadline_ms": 20000}
                )
            )
            await wait_until(lambda: service.counters["coalesced"] == 1)
            assert (await owner)["status"] == "timeout"
            await service.scheduler.start()
            response = await asyncio.wait_for(waiter, 30)
            assert response["status"] == "ok" and response["coalesced"]
            assert service.counters["inferences"] == 1
            assert service.scheduler.counters["expired"] == 0
            await service.stop()

        run(scenario())

    def test_queued_request_is_released_at_its_deadline(self):
        async def scenario():
            # Workers never started: the job sits queued forever, but the
            # submitting client must still get its 504 at the deadline.
            service = AnalysisService(ServiceConfig(jobs=1))
            response = await asyncio.wait_for(
                service.handle(
                    {"op": "analyze", "source": FMA_SOURCE, "deadline_ms": 50}
                ),
                timeout=10,
            )
            assert response["status"] == "timeout" and response["code"] == 504
            assert service.counters["timeouts"] == 1
            await service.stop()

        run(scenario())

    def test_full_queue_returns_busy(self):
        async def scenario():
            # Workers intentionally not started: the first request parks in
            # the queue, the second distinct one must be shed.
            service = AnalysisService(ServiceConfig(jobs=1, queue_size=1))
            first = asyncio.ensure_future(
                service.handle({"op": "analyze", "source": FMA_SOURCE})
            )
            await wait_until(
                lambda: service.scheduler.stats()["queue_depth"] == 1
            )
            response = await service.handle(
                {"op": "analyze", "source": HORNER_SOURCE}
            )
            assert response["status"] == "busy" and response["code"] == 429
            assert service.counters["busy"] == 1
            first.cancel()
            try:
                await first
            except asyncio.CancelledError:
                pass
            await service.stop()

        run(scenario())

    def test_adversarially_deep_source_gets_an_error_response(self):
        async def scenario():
            service = await make_service()
            deep = "(" * 100_000 + "x" + ")" * 100_000
            response = await service.handle({"op": "analyze", "source": deep})
            # RecursionError (or a parse failure) must surface as a JSON
            # response, never escape and kill the connection.
            assert response["status"] in ("ok", "error")
            if response["status"] == "ok":
                assert response["report"]["ok"] is False
            # The service still works afterwards.
            follow_up = await service.handle({"op": "analyze", "source": FMA_SOURCE})
            assert follow_up["status"] == "ok"
            await service.stop()

        run(scenario())

    def test_malformed_requests_are_rejected(self):
        async def scenario():
            service = await make_service()
            assert (await service.handle([1, 2]))["status"] == "error"
            assert (await service.handle({"op": "nope"}))["status"] == "error"
            assert (await service.handle({"op": "analyze"}))["status"] == "error"
            assert (
                await service.handle({"op": "analyze", "source": "x", "kind": "java"})
            )["status"] == "error"
            assert (
                await service.handle(
                    {"op": "analyze", "source": "x", "priority": "vip"}
                )
            )["status"] == "error"
            assert service.counters["errors"] == 5
            await service.stop()

        run(scenario())

    def test_stats_shape(self):
        async def scenario():
            service = await make_service()
            await service.handle({"op": "analyze", "source": FMA_SOURCE})
            response = await service.handle({"op": "stats"})
            stats = response["stats"]
            assert {"service", "cache", "scheduler", "inflight", "uptime_seconds"} <= set(
                stats
            )
            assert {
                "requests",
                "coalesced",
                "inferences",
                "cache_hits",
                "busy",
                "timeouts",
            } <= set(stats["service"])
            assert {"hits", "misses", "per_shard", "shards"} <= set(stats["cache"])
            assert {"queue_depth", "shed", "lanes"} <= set(stats["scheduler"])
            await service.stop()

        run(scenario())


# ---------------------------------------------------------------------------
# The TCP server + blocking client
# ---------------------------------------------------------------------------


@pytest.fixture()
def live_server():
    # The same server-in-a-daemon-thread harness the load generator uses.
    from repro.perf.service_bench import _ServerHarness

    with _ServerHarness(ServiceConfig(jobs=1)) as harness:
        yield harness.port


class TestServerRoundTrip:
    def test_client_analyze_and_stats(self, live_server):
        with ServiceClient(port=live_server) as client:
            assert client.ping()
            response = client.analyze(FMA_SOURCE, name="fma")
            assert response["status"] == "ok"
            assert response["report"]["functions"][0]["name"] == "FMA"
            repeat = client.analyze(FMA_SOURCE)
            assert repeat["cached"]
            stats = client.stats()
            assert stats["service"]["inferences"] == 1
            assert stats["service"]["cache_hits"] == 1

    def test_concurrent_clients_coalesce_over_tcp(self, live_server):
        results = []
        barrier = threading.Barrier(4)

        def worker():
            with ServiceClient(port=live_server) as client:
                barrier.wait(timeout=10)
                results.append(client.analyze(HORNER_SOURCE))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(results) == 4
        assert all(response["status"] == "ok" for response in results)
        with ServiceClient(port=live_server) as client:
            stats = client.stats()
        # However the four requests interleaved (coalesced or cached),
        # the server performed exactly one inference for the program.
        assert stats["service"]["inferences"] == 1

    def test_bad_json_line_yields_error_response(self, live_server):
        import json
        import socket

        with socket.create_connection(("127.0.0.1", live_server), timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            response = json.loads(sock.makefile("rb").readline())
        assert response["status"] == "error" and response["code"] == 400

    def test_busy_and_error_raise_service_error(self, live_server):
        with ServiceClient(port=live_server) as client:
            with pytest.raises(ServiceError) as info:
                client.analyze("")  # empty source
            assert info.value.response["status"] == "error"

    def test_query_cli_round_trip(self, live_server, capsys):
        from repro.cli import main

        path = os.path.join(EXAMPLES, "horner2.lnum")
        assert main(["query", path, "--port", str(live_server)]) == 0
        output = capsys.readouterr().out
        assert "Horner2" in output and "2*eps" in output
        # Stats flag prints the JSON payload.
        assert main(["query", "--stats", "--port", str(live_server)]) == 0
        assert '"inferences"' in capsys.readouterr().out

    def test_shutdown_completes_with_an_idle_connection_open(self):
        # Regression guard for Python >= 3.12.1, where Server.wait_closed
        # waits for every connection handler: an idle client parked in
        # readline() must not hold shutdown hostage.
        import socket

        from repro.perf.service_bench import _ServerHarness

        with _ServerHarness(ServiceConfig(jobs=1)) as harness:
            idle = socket.create_connection(("127.0.0.1", harness.port), timeout=10)
            try:
                ServiceClient(port=harness.port, timeout=10).shutdown()
                harness._thread.join(timeout=15)
                assert not harness._thread.is_alive(), (
                    "server did not shut down with an idle connection open"
                )
            finally:
                idle.close()

    def test_query_cli_unreachable_server(self, capsys):
        from repro.cli import main

        assert main(["query", os.path.join(EXAMPLES, "horner2.lnum"), "--port", "1"]) == 3
        assert "error" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# The validate request kind
# ---------------------------------------------------------------------------


class TestValidateOp:
    REQUEST = {
        "op": "validate",
        "source": FMA_SOURCE,
        "samples": 4,
        "points": 1,
        "seed": 0,
    }

    def test_validate_round_trip_and_caching(self):
        async def scenario():
            service = await make_service()
            first = await service.handle(dict(self.REQUEST))
            assert first["status"] == "ok" and first["op"] == "validate"
            report = first["report"]
            assert report["ok"] and report["verdict"] == "sound"
            (program,) = report["reports"]
            assert program["verdict"] == "sound"
            backends = {entry["backend"] for entry in program["backends"]}
            assert {"lnum", "gappa_like", "fptaylor_like", "standard_bounds"} <= backends
            # Same source + same sampling parameters: cached.
            second = await service.handle(dict(self.REQUEST))
            assert second["cached"]
            # Different sampling parameters are a different request.
            third = await service.handle({**self.REQUEST, "samples": 5})
            assert not third["cached"]
            assert service.counters["validate_requests"] == 3
            assert service.counters["inferences"] == 2
            await service.stop()

        run(scenario())

    def test_validate_key_is_distinct_from_analyze(self):
        async def scenario():
            service = await make_service()
            analyze = await service.handle({"op": "analyze", "source": FMA_SOURCE})
            validate = await service.handle(dict(self.REQUEST))
            assert analyze["key"] != validate["key"]
            # Neither is served from the other's cache entry.
            assert not validate["cached"]
            assert validate["report"]["reports"][0]["backends"]
            await service.stop()

        run(scenario())

    def test_validate_rejects_bad_parameters(self):
        async def scenario():
            service = await make_service()
            response = await service.handle({**self.REQUEST, "samples": "lots"})
            assert response["status"] == "error"
            response = await service.handle({**self.REQUEST, "points": -1})
            assert response["status"] == "error"
            # Zero points would silently drop the whole stochastic budget.
            response = await service.handle({**self.REQUEST, "points": 0})
            assert response["status"] == "error"
            await service.stop()

        run(scenario())

    def test_concurrent_validate_duplicates_coalesce(self):
        async def scenario():
            service = await make_service()
            responses = await asyncio.gather(
                *[service.handle(dict(self.REQUEST)) for _ in range(4)]
            )
            assert [response["status"] for response in responses] == ["ok"] * 4
            assert service.counters["inferences"] == 1
            assert (
                service.counters["coalesced"] + service.counters["cache_hits"] == 3
            )
            await service.stop()

        run(scenario())

    def test_client_validate_over_tcp(self, live_server):
        with ServiceClient(port=live_server) as client:
            response = client.validate(FMA_SOURCE, name="fma", samples=4, points=1)
            assert response["status"] == "ok"
            assert response["report"]["verdict"] == "sound"
            stats = client.stats()
            assert stats["service"]["validate_requests"] == 1

    def test_query_cli_validate_flag(self, live_server, capsys):
        from repro.cli import main

        path = os.path.join(EXAMPLES, "fma.lnum")
        code = main(
            [
                "query",
                path,
                "--validate",
                "--samples",
                "4",
                "--points",
                "1",
                "--port",
                str(live_server),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "SOUND" in output and "lnum" in output


# ---------------------------------------------------------------------------
# The reusable pool handle
# ---------------------------------------------------------------------------


class TestPoolHandle:
    def test_thread_mode_reuses_executor(self):
        pool = PoolHandle(1)
        assert not pool.started
        first = pool.submit(len, "abc").result()
        assert first == 3 and pool.started
        executor = pool.executor
        pool.submit(len, "abcd").result()
        assert pool.executor is executor
        pool.close()
        assert not pool.started
        # Reusable after close: a new executor is created lazily.
        assert pool.submit(len, "ab").result() == 2
        pool.close()

    def test_batch_analyzer_owns_a_pool(self):
        from repro.analysis.batch import BatchAnalyzer

        with BatchAnalyzer(jobs=1) as engine:
            assert engine.pool.jobs == 1
