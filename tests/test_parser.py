"""Tests for the surface-syntax lexer and parser."""

from fractions import Fraction

import pytest

from repro.core import ast as A
from repro.core import types as T
from repro.core.errors import ParseError
from repro.core.grades import EPS, INFINITY
from repro.core.inference import infer
from repro.core.parser import parse_program, parse_term, parse_type, tokenize


class TestLexer:
    def test_identifiers_with_primes(self):
        tokens = tokenize("x' y1 _z")
        assert [t.text for t in tokens[:-1]] == ["x'", "y1", "_z"]

    def test_keywords_are_tagged(self):
        tokens = tokenize("function let rnd")
        assert all(t.kind == "keyword" for t in tokens[:-1])

    def test_numbers(self):
        tokens = tokenize("1 2.5 1e-5")
        assert [t.text for t in tokens[:-1]] == ["1", "2.5", "1e-5"]

    def test_multichar_punctuation(self):
        tokens = tokenize("(| |) -o <>")
        assert [t.text for t in tokens[:-1]] == ["(|", "|)", "-o", "<>"]

    def test_comments_are_skipped(self):
        tokens = tokenize("x # a comment\ny // another\nz")
        assert [t.text for t in tokens[:-1]] == ["x", "y", "z"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("x\n  y")
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            tokenize("x $ y")


class TestTypeParser:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("num", T.NUM),
            ("unit", T.UNIT),
            ("bool", T.bool_type()),
            ("M[eps]num", T.Monadic(EPS, T.NUM)),
            ("M[2*eps]num", T.Monadic(2 * EPS, T.NUM)),
            ("![2.0]num", T.Bang(2, T.NUM)),
            ("![0.5]num", T.Bang(Fraction(1, 2), T.NUM)),
            ("![inf]num", T.Bang(INFINITY, T.NUM)),
            ("(num, num)", T.TensorProduct(T.NUM, T.NUM)),
            ("<num, num>", T.WithProduct(T.NUM, T.NUM)),
            ("num + unit", T.SumType(T.NUM, T.UNIT)),
            ("num -o num", T.Arrow(T.NUM, T.NUM)),
            ("num -o num -o num", T.Arrow(T.NUM, T.Arrow(T.NUM, T.NUM))),
            ("![2]M[eps]num", T.Bang(2, T.Monadic(EPS, T.NUM))),
            ("(num -o num)", T.Arrow(T.NUM, T.NUM)),
            ("(num, num) -o M[eps]num", T.Arrow(T.TensorProduct(T.NUM, T.NUM), T.Monadic(EPS, T.NUM))),
        ],
    )
    def test_types(self, source, expected):
        assert parse_type(source) == expected

    def test_bad_type(self):
        with pytest.raises(ParseError):
            parse_type("M[eps")


class TestTermParser:
    def test_number_literal(self):
        term = parse_term("3.5")
        assert isinstance(term, A.Const) and term.value == Fraction(7, 2)

    def test_primitive_application(self):
        term = parse_term("mul (x, y)")
        assert isinstance(term, A.Op) and term.name == "mul"
        assert isinstance(term.value, A.TensorPair)

    def test_with_pair_argument(self):
        term = parse_term("add (|x, y|)")
        assert isinstance(term.value, A.WithPair)

    def test_sqrt_is_auto_boxed(self):
        term = parse_term("sqrt x")
        assert isinstance(term, A.Op) and isinstance(term.value, A.Box)
        assert term.value.scale == Fraction(1, 2)

    def test_rnd_and_ret(self):
        assert isinstance(parse_term("rnd x"), A.Rnd)
        assert isinstance(parse_term("ret x"), A.Ret)

    def test_plain_let_statement(self):
        term = parse_term("s = mul (x, x); rnd s")
        assert isinstance(term, A.Let)
        assert isinstance(term.body, A.Rnd)

    def test_monadic_let_statement(self):
        term = parse_term("let a = v; ret a")
        assert isinstance(term, A.LetBind)

    def test_let_box_statement(self):
        term = parse_term("let [y] = x; mul (y, y)")
        assert isinstance(term, A.LetBox)

    def test_nested_call_gets_a_let(self):
        # rnd (mul (x, x)) requires let-insertion because rnd takes a value.
        term = parse_term("rnd (mul (x, x))")
        assert isinstance(term, A.Let)
        assert isinstance(term.body, A.Rnd)

    def test_curried_application(self):
        term = parse_term("f a b")
        # f a is not a value, so the parser inserts a let before applying to b.
        assert isinstance(term, A.Let)
        assert isinstance(term.body, A.App)

    def test_if_desugars_to_case(self):
        term = parse_term("if is_pos x then ret x else ret 1")
        # The guard computation is let-bound, the case consumes it.
        assert isinstance(term, A.Let)
        assert isinstance(term.body, A.Case)

    def test_box_literal_with_scale(self):
        term = parse_term("[x]{2}")
        assert isinstance(term, A.Box) and term.scale == 2

    def test_unit_literal(self):
        assert isinstance(parse_term("<>"), A.UnitVal)

    def test_booleans(self):
        assert isinstance(parse_term("true"), A.Inl)
        assert isinstance(parse_term("false"), A.Inr)

    def test_parse_error_reports_position(self):
        with pytest.raises(ParseError):
            parse_term("mul (x,")


class TestProgramParser:
    SOURCE = """
    # The fused multiply-add of Fig. 8.
    function FMA (x: num) (y: num) (z: num) : M[eps]num {
      a = mul (x, y);
      b = add (|a, z|);
      rnd b
    }
    function twice (x: num) : M[2*eps]num {
      let a = FMA x 1 1;
      s = mul (a, 1);
      rnd s
    }
    """

    def test_definitions_are_recorded(self):
        program = parse_program(self.SOURCE)
        assert program.names() == ["FMA", "twice"]
        fma = program.definition("FMA")
        assert fma.arity == 3
        assert fma.return_annotation == T.Monadic(EPS, T.NUM)

    def test_term_for_includes_dependencies(self):
        program = parse_program(self.SOURCE)
        term = program.term_for("twice")
        assert isinstance(term, A.Let)  # FMA definition wrapped around
        assert A.free_variables(term) == set()

    def test_term_for_leaf_function_has_no_wrapping(self):
        program = parse_program(self.SOURCE)
        term = program.term_for("FMA")
        assert isinstance(term, A.Lambda)

    def test_main_term_defaults_to_last_definition(self):
        program = parse_program(self.SOURCE)
        main = program.main_term()
        assert A.free_variables(main) == set()

    def test_program_with_trailing_expression(self):
        program = parse_program(self.SOURCE + "\nFMA 2 3 4\n")
        assert program.main is not None
        assert A.free_variables(program.main_term()) == set()

    def test_unknown_definition_lookup(self):
        program = parse_program(self.SOURCE)
        with pytest.raises(KeyError):
            program.definition("nope")

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse_program("").main_term()

    def test_parsed_function_typechecks(self):
        program = parse_program(self.SOURCE)
        result = infer(program.term_for("FMA"), {})
        assert str(result.type) == "(num -o (num -o (num -o M[eps]num)))"
