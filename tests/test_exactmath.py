"""Tests for the exact rational arithmetic helpers (sqrt, log, exp enclosures)."""

import math
from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.floats.exactmath import (
    exp_enclosure,
    expm1_lower,
    expm1_upper,
    floor_log2,
    log_enclosure,
    log_ratio_enclosure,
    rp_distance_enclosure,
    sqrt_is_exact,
    sqrt_round,
)

positive_rationals = st.fractions(min_value=Fraction(1, 10**6), max_value=Fraction(10**6)).filter(
    lambda q: q > 0
)
small_rationals = st.fractions(min_value=Fraction(-2), max_value=Fraction(2))


class TestFloorLog2:
    def test_powers_of_two(self):
        assert floor_log2(Fraction(1)) == 0
        assert floor_log2(Fraction(2)) == 1
        assert floor_log2(Fraction(1, 2)) == -1
        assert floor_log2(Fraction(1, 4)) == -2

    def test_non_powers(self):
        assert floor_log2(Fraction(3)) == 1
        assert floor_log2(Fraction(5, 7)) == -1
        assert floor_log2(Fraction(1023)) == 9
        assert floor_log2(Fraction(1025)) == 10

    @given(value=positive_rationals)
    @settings(max_examples=80, deadline=None)
    def test_defining_property(self, value):
        exponent = floor_log2(value)
        assert Fraction(2) ** exponent <= value < Fraction(2) ** (exponent + 1)


class TestSqrtRound:
    def test_exact_squares(self):
        assert sqrt_round(Fraction(9, 4), 53, "RN") == Fraction(3, 2)
        assert sqrt_is_exact(Fraction(49))
        assert not sqrt_is_exact(Fraction(2))

    def test_directed_modes_bracket_the_root(self):
        for value in (Fraction(2), Fraction(1, 3), Fraction(12345, 67)):
            down = sqrt_round(value, 100, "RD")
            up = sqrt_round(value, 100, "RU")
            assert down * down <= value <= up * up
            assert down < up

    def test_nearest_is_between_directed(self):
        value = Fraction(2)
        down = sqrt_round(value, 60, "RD")
        up = sqrt_round(value, 60, "RU")
        nearest = sqrt_round(value, 60, "RN")
        assert nearest in (down, up)

    def test_precision_controls_error(self):
        value = Fraction(2)
        coarse = sqrt_round(value, 10, "RD")
        fine = sqrt_round(value, 200, "RD")
        assert abs(fine * fine - 2) < abs(coarse * coarse - 2)

    def test_zero(self):
        assert sqrt_round(Fraction(0), 53, "RU") == 0

    @given(value=positive_rationals)
    @settings(max_examples=60, deadline=None)
    def test_relative_accuracy(self, value):
        result = sqrt_round(value, 80, "RN")
        # |result^2 - value| / value <= ~2^-78
        assert abs(result * result - value) / value <= Fraction(1, 2**77)

    @given(value=positive_rationals)
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_math_sqrt(self, value):
        result = sqrt_round(value, 80, "RN")
        assert float(result) == pytest_approx(math.sqrt(float(value)))


def pytest_approx(x: float, rel: float = 1e-12) -> float:
    import pytest

    return pytest.approx(x, rel=rel)


class TestLogEnclosures:
    @given(value=positive_rationals)
    @settings(max_examples=60, deadline=None)
    def test_log_enclosure_contains_math_log(self, value):
        low, high = log_enclosure(value)
        assert low <= high
        assert float(low) <= math.log(float(value)) + 1e-12
        assert math.log(float(value)) - 1e-12 <= float(high)

    def test_log_of_one_is_zero(self):
        low, high = log_enclosure(Fraction(1))
        assert low <= 0 <= high
        assert high - low < Fraction(1, 10**20)

    def test_log_ratio(self):
        low, high = log_ratio_enclosure(Fraction(3), Fraction(2))
        assert float(low) <= math.log(1.5) <= float(high)

    def test_enclosure_width_is_tiny(self):
        low, high = log_enclosure(Fraction(12345, 678))
        assert high - low < Fraction(1, 10**30)

    @given(x=positive_rationals, y=positive_rationals)
    @settings(max_examples=60, deadline=None)
    def test_rp_distance_is_symmetric_and_contains_truth(self, x, y):
        low_xy, high_xy = rp_distance_enclosure(x, y)
        low_yx, high_yx = rp_distance_enclosure(y, x)
        truth = abs(math.log(float(x) / float(y)))
        assert float(low_xy) <= truth + 1e-9
        assert truth - 1e-9 <= float(high_xy)
        # Symmetry of the metric.
        assert abs(float(low_xy - low_yx)) < 1e-12
        assert low_xy >= 0

    def test_rp_distance_of_equal_points_is_zero(self):
        low, high = rp_distance_enclosure(Fraction(5, 3), Fraction(5, 3))
        assert low == 0 and high == 0

    def test_rp_distance_resolves_tiny_perturbations(self):
        # A relative perturbation of 2^-52 is far below what float log can
        # resolve; the rational enclosure pins it to ~40 decimal digits.
        x = Fraction(1, 3)
        y = x * (1 + Fraction(1, 2**52))
        low, high = rp_distance_enclosure(x, y)
        assert Fraction(1, 2**53) < low <= high < Fraction(1, 2**51)


class TestExpEnclosures:
    @given(value=small_rationals)
    @settings(max_examples=60, deadline=None)
    def test_exp_enclosure_contains_math_exp(self, value):
        low, high = exp_enclosure(value)
        assert low <= high
        truth = math.exp(float(value))
        assert float(low) <= truth * (1 + 1e-12)
        assert truth * (1 - 1e-12) <= float(high)

    def test_exp_zero(self):
        low, high = exp_enclosure(Fraction(0))
        assert low <= 1 <= high

    def test_expm1_bounds_order(self):
        value = Fraction(1, 2**40)
        assert expm1_lower(value) <= expm1_upper(value)
        assert expm1_upper(value) >= value  # e^x - 1 >= x for x >= 0

    def test_expm1_matches_equation_8(self):
        # Equation (8): eps = e^alpha - 1 <= alpha / (1 - alpha).
        alpha = Fraction(3, 2**52)
        assert expm1_upper(alpha) <= alpha / (1 - alpha)
