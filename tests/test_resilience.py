"""Chaos suite for the resilience layer.

Unit coverage for the deterministic primitives (fault plans, retry
schedules, circuit breakers, deadline arithmetic), the graceful-
degradation paths (corrupt disk-cache quarantine, compiled-engine
fallback), the shed-expired scheduler satellite and the client read
timeout — then one end-to-end chaos run: a two-worker cluster under a
pinned fault plan (worker kills, delayed/truncated frames, corrupted
cache writes, injected compiled-engine failures) must serve every
request through the retrying pipelined client with zero client-visible
failures and identical answers for identical programs.
"""

import json
import os
import socket
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.batch import BatchItem, PoolHandle
from repro.analysis.cache import (
    QUARANTINE_MAX_FILES,
    AnalysisCache,
    memo_report,
    quarantined_total,
)
from repro.core import ast as A
from repro.core.inference import engine_fallback_stats, infer
from repro.faults import (
    FAULT_SITES,
    FaultPlan,
    activate,
    active_plan,
    deactivate,
    plan_from_environment,
)
from repro.service import (
    CircuitBreaker,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service.resilience import decrement_deadline, retryable_response
from repro.service.scheduler import (
    DeadlineExceeded,
    Job,
    PRIORITY_INTERACTIVE,
    Scheduler,
)

FMA_SOURCE = """
function FMA (x: num) (y: num) (z: num) : M[eps]num {
  a = mul (x, y);
  b = add (|a, z|);
  rnd b
}
"""


@pytest.fixture(autouse=True)
def no_leaked_fault_plan():
    """Every test starts and ends with fault injection disabled."""
    deactivate()
    yield
    deactivate()


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    @given(
        retries=st.integers(min_value=0, max_value=12),
        base=st.floats(min_value=0.001, max_value=0.5),
        multiplier=st.floats(min_value=1.0, max_value=3.0),
        max_delay=st.floats(min_value=0.01, max_value=4.0),
        jitter=st.floats(min_value=0.0, max_value=1.0),
        budget=st.floats(min_value=0.001, max_value=10.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_schedule_is_deterministic_and_budget_capped(
        self, retries, base, multiplier, max_delay, jitter, budget, seed
    ):
        policy = RetryPolicy(
            retries=retries, base_delay=base, multiplier=multiplier,
            max_delay=max_delay, jitter=jitter, budget_seconds=budget,
            seed=seed,
        )
        schedule = policy.schedule()
        # Determinism: a fresh instance with the same fields agrees exactly.
        assert schedule == RetryPolicy(
            retries=retries, base_delay=base, multiplier=multiplier,
            max_delay=max_delay, jitter=jitter, budget_seconds=budget,
            seed=seed,
        ).schedule()
        assert len(schedule) <= retries
        assert all(delay >= 0.0 for delay in schedule)
        # No single delay exceeds the cap, and the cumulative sleep never
        # exceeds the budget (the final delay is clipped to the remainder).
        assert all(delay <= max_delay + 1e-9 for delay in schedule)
        assert sum(schedule) <= budget + 1e-9

    def test_zero_retries_is_empty(self):
        assert RetryPolicy(retries=0).schedule() == []
        assert RetryPolicy(retries=5, budget_seconds=0.0).schedule() == []

    def test_different_seeds_differ(self):
        kwargs = dict(retries=8, jitter=0.9, budget_seconds=100.0)
        assert (
            RetryPolicy(seed=1, **kwargs).schedule()
            != RetryPolicy(seed=2, **kwargs).schedule()
        )

    def test_retryable_response_contract(self):
        assert retryable_response(None)  # pure transport failure
        assert retryable_response({"status": "error", "retryable": True})
        assert not retryable_response({"status": "error", "code": 400})
        assert not retryable_response({"status": "ok"})


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------


class TestFaultPlan:
    SPEC = "seed=7;kill_worker=@3;slow_response=0.4:15;corrupt_cache=0.1"

    def test_decisions_are_deterministic(self):
        first = FaultPlan.from_spec(self.SPEC)
        second = FaultPlan.from_spec(self.SPEC)
        for site in ("slow_response", "corrupt_cache"):
            assert [first.should(site) for _ in range(200)] == [
                second.should(site) for _ in range(200)
            ]

    def test_ordinal_sites_fire_exactly_where_listed(self):
        plan = FaultPlan.from_spec("seed=1;kill_worker=@2,5")
        fired = [plan.should("kill_worker") for _ in range(6)]
        assert fired == [False, True, False, False, True, False]
        seen, injected = plan.counts()["kill_worker"]
        assert (seen, injected) == (6, 2)

    def test_sites_keep_independent_counters(self):
        plan = FaultPlan.from_spec("seed=1;kill_worker=@1;drop_connection=@1")
        assert plan.should("kill_worker")
        # drop_connection's stream was not advanced by kill_worker events.
        assert plan.should("drop_connection")

    def test_unknown_site_and_bad_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("seed=1;explode=0.5")
        with pytest.raises(ValueError):
            FaultPlan.from_spec("kill_worker=1.5")
        with pytest.raises(ValueError):
            FaultPlan.from_spec("kill_worker=@0")
        with pytest.raises(ValueError):
            FaultPlan.from_spec("kill_worker")

    def test_seed_changes_the_stream(self):
        one = FaultPlan.from_spec("seed=1;corrupt_cache=0.5")
        two = FaultPlan.from_spec("seed=2;corrupt_cache=0.5")
        assert [one.should("corrupt_cache") for _ in range(128)] != [
            two.should("corrupt_cache") for _ in range(128)
        ]

    def test_arg_and_defaults(self):
        plan = FaultPlan.from_spec("seed=1;slow_response=1.0:80")
        assert plan.arg("slow_response", 25.0) == 80.0
        assert plan.arg("kill_worker", 25.0) == 25.0

    def test_unlisted_site_never_fires(self):
        plan = FaultPlan.from_spec("seed=1;kill_worker=@1")
        assert all(not plan.should("corrupt_cache") for _ in range(32))

    def test_activation_lifecycle(self, monkeypatch):
        assert active_plan() is None
        plan = activate(self.SPEC)
        assert active_plan() is plan and plan.spec == self.SPEC
        deactivate()
        assert active_plan() is None
        monkeypatch.setenv("REPRO_FAULTS", "seed=3;kill_worker=@9")
        assert plan_from_environment() == "seed=3;kill_worker=@9"
        monkeypatch.delenv("REPRO_FAULTS")
        assert plan_from_environment() is None

    def test_describe_lists_every_site(self):
        plan = FaultPlan.from_spec(self.SPEC)
        description = plan.describe()
        assert description["seed"] == 7
        assert {site["site"] for site in description["sites"]} <= set(FAULT_SITES)
        assert set(description["injected"]) == {
            "kill_worker", "slow_response", "corrupt_cache",
        }


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_k_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.allow() and breaker.state == breaker.CLOSED
        breaker.record_failure()
        assert not breaker.allow() and breaker.state == breaker.OPEN

    def test_success_resets_the_failure_run(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == breaker.CLOSED

    def test_trip_opens_immediately(self):
        breaker = CircuitBreaker(failure_threshold=5)
        breaker.trip()
        assert breaker.state == breaker.OPEN and not breaker.allow()

    def test_full_open_half_open_closed_cycle(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure()
        assert breaker.state == breaker.OPEN
        breaker.probe_success()
        assert breaker.state == breaker.HALF_OPEN and breaker.allow()
        breaker.record_success()
        assert breaker.state == breaker.CLOSED
        assert breaker.transitions == {
            breaker.CLOSED: 1, breaker.OPEN: 1, breaker.HALF_OPEN: 1,
        }

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.trip()
        breaker.probe_success()
        breaker.record_failure()
        assert breaker.state == breaker.OPEN
        assert breaker.transitions[breaker.OPEN] == 2

    def test_probe_on_closed_is_a_success(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.probe_success()
        assert breaker.consecutive_failures == 0
        assert breaker.state == breaker.CLOSED

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


# ---------------------------------------------------------------------------
# Deadline propagation
# ---------------------------------------------------------------------------


class TestDeadlines:
    def test_decrement_passes_remaining_budget(self):
        assert decrement_deadline(1000.0, 0.25) == pytest.approx(750.0)

    def test_exhausted_budget_is_none(self):
        assert decrement_deadline(100.0, 0.2) is None
        assert decrement_deadline(100.0, 0.1) is None  # exactly spent

    def test_non_numeric_and_bool_are_none(self):
        assert decrement_deadline("soon", 0.0) is None
        assert decrement_deadline(None, 0.0) is None
        assert decrement_deadline(True, 0.0) is None

    def test_scheduler_sheds_expired_jobs_before_dispatch(self):
        import asyncio

        async def scenario():
            scheduler = Scheduler(pool=PoolHandle(1), queue_size=8)
            job = Job(
                key="expired",
                item=BatchItem(name="expired", kind="lnum", source=FMA_SOURCE),
                priority=PRIORITY_INTERACTIVE,
                deadline=time.monotonic() - 0.01,
            )
            future = scheduler.submit(job)
            await scheduler.start()
            with pytest.raises(DeadlineExceeded):
                await future
            # Both the legacy counter and the resilience-layer name move.
            assert scheduler.counters["expired"] == 1
            assert scheduler.counters["shed_expired"] == 1
            assert scheduler.counters["completed"] == 0
            await scheduler.stop()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Client read timeout (satellite)
# ---------------------------------------------------------------------------


class TestClientTimeout:
    def test_timeout_applies_to_reads(self):
        """A server that accepts but never answers must not hang the client."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        held = []

        def accept_and_hold():
            try:
                connection, _ = listener.accept()
                held.append(connection)  # keep it open, never write
            except OSError:
                pass

        thread = threading.Thread(target=accept_and_hold, daemon=True)
        thread.start()
        try:
            client = ServiceClient(port=port, timeout=0.3)
            started = time.monotonic()
            with pytest.raises(ServiceError):
                client.ping()
            assert time.monotonic() - started < 5.0
            client.close()
        finally:
            for connection in held:
                connection.close()
            listener.close()


# ---------------------------------------------------------------------------
# Corrupt-cache quarantine (satellite)
# ---------------------------------------------------------------------------


class TestCacheQuarantine:
    def test_corrupt_entry_is_renamed_and_recomputable(self, tmp_path):
        cache = AnalysisCache(directory=str(tmp_path))
        cache.put("victim", {"payload": list(range(64))})
        path = os.path.join(str(tmp_path), "victim.pkl")
        with open(path, "wb") as handle:
            handle.write(b"\x00garbage\x00")
        before = quarantined_total()
        fresh = AnalysisCache(directory=str(tmp_path))
        assert fresh.get("victim") is None  # a miss, not an exception
        assert not os.path.exists(path)
        assert os.path.exists(os.path.join(str(tmp_path), "victim.corrupt"))
        assert fresh.quarantined == 1
        assert quarantined_total() == before + 1
        # The key is clear again: the next write/read cycle is clean.
        fresh.put("victim", "recomputed")
        assert AnalysisCache(directory=str(tmp_path)).get("victim") == "recomputed"

    def test_quarantine_is_bounded_per_directory(self, tmp_path):
        for index in range(QUARANTINE_MAX_FILES):
            (tmp_path / f"old{index}.corrupt").write_bytes(b"x")
        cache = AnalysisCache(directory=str(tmp_path))
        cache.put("victim", 1)
        path = os.path.join(str(tmp_path), "victim.pkl")
        with open(path, "wb") as handle:
            handle.write(b"\x00garbage\x00")
        assert AnalysisCache(directory=str(tmp_path)).get("victim") is None
        # Over the cap: unlinked instead of renamed.
        assert not os.path.exists(path)
        assert not os.path.exists(os.path.join(str(tmp_path), "victim.corrupt"))

    def test_clear_sweeps_quarantine_files(self, tmp_path):
        (tmp_path / "stale.corrupt").write_bytes(b"x")
        cache = AnalysisCache(directory=str(tmp_path))
        cache.put("live", 1)
        cache.clear()
        assert list(tmp_path.iterdir()) == []

    def test_memo_report_exposes_quarantine_counters(self):
        block = memo_report()["cache_quarantine"]
        assert block["cap_per_directory"] == QUARANTINE_MAX_FILES
        assert block["entries"] >= 0

    def test_injected_corruption_round_trips_through_quarantine(self, tmp_path):
        activate("seed=11;corrupt_cache=1.0")
        writer = AnalysisCache(directory=str(tmp_path))
        writer.put("victim", {"answer": 42})
        deactivate()
        reader = AnalysisCache(directory=str(tmp_path))
        assert reader.get("victim") is None
        assert reader.quarantined == 1
        assert os.path.exists(os.path.join(str(tmp_path), "victim.corrupt"))


# ---------------------------------------------------------------------------
# Compiled-engine graceful degradation
# ---------------------------------------------------------------------------


class TestCompiledFallback:
    def test_injected_failure_degrades_to_identical_answer(self):
        # Interned (hash-consed), so the failed plan can be quarantined by
        # its ``_intern_id``; a constant unlikely to collide with other tests.
        term = A.intern_term(A.Let("t", A.Const(987654.25), A.Var("t")))
        reference = infer(term, {}, memo=False, engine="interpreted")
        before = engine_fallback_stats()

        activate("seed=5;compiled_error=@1")
        degraded = infer(term, {}, memo=False, engine="compiled")
        after = engine_fallback_stats()
        assert degraded.type == reference.type
        assert degraded.context == reference.context
        assert after["fallbacks"] == before["fallbacks"] + 1
        assert after["quarantined"] >= before["quarantined"] + 1

        # The plan is quarantined: even with injection disabled, the same
        # term skips the compiled engine instead of re-failing, and the
        # answer is still identical.
        deactivate()
        again = infer(term, {}, memo=False, engine="compiled")
        final = engine_fallback_stats()
        assert again.type == reference.type
        assert again.context == reference.context
        assert final["fallbacks"] == after["fallbacks"] + 1

    def test_compiled_engine_unaffected_without_a_plan(self):
        term = A.Let("u", A.Const(13.5), A.Var("u"))
        reference = infer(term, {}, memo=False, engine="interpreted")
        result = infer(term, {}, memo=False, engine="compiled")
        assert result.type == reference.type
        assert result.context == reference.context


# ---------------------------------------------------------------------------
# End-to-end chaos: a faulted cluster must look healthy from outside
# ---------------------------------------------------------------------------


class TestChaosCluster:
    #: Aggressive plan scaled to a short run: each worker lifetime dies on
    #: its 10th analysis, a quarter of cache writes are corrupted, and
    #: half of the compiled inferences fail over to the interpreter.
    SPEC = (
        "seed=20;kill_worker=@10;slow_response=0.1:30;truncate_frame=@30;"
        "corrupt_cache=0.25;compiled_error=0.5"
    )
    REQUESTS = 48

    def test_chaos_run_has_no_client_visible_failures(self, tmp_path):
        from repro.perf.chaos_smoke import chaos_corpus, run_chaos_load
        from repro.perf.service_bench import _RouterHarness

        corpus = chaos_corpus(limit=8)
        retry = RetryPolicy(retries=8, base_delay=0.1, budget_seconds=60.0, seed=7)
        config = ServiceConfig(
            engine="compiled", cache_dir=str(tmp_path), queue_size=512,
            faults=self.SPEC,
        )
        with _RouterHarness(2, config) as harness:
            load = run_chaos_load(harness.port, corpus, self.REQUESTS, retry)
            with ServiceClient(port=harness.port, timeout=30) as client:
                stats = client.stats()

        # Zero client-visible failures, every request answered.
        assert load["failures"] == []
        assert all(report is not None for report in load["reports"])
        assert all(report.get("ok") for report in load["reports"])

        # Identical programs produce identical (normalized) reports, no
        # matter which mix of compiled/fallback/cache/retry served them.
        canonical = {}
        for index, report in enumerate(load["reports"]):
            blob = json.dumps(report, sort_keys=True)
            program = index % len(corpus)
            assert canonical.setdefault(program, blob) == blob, (
                f"request {index} (program {program}) diverged under faults"
            )

        # The run actually exercised the resilience layer: workers died
        # and were respawned, and every slot's breaker both opened and
        # re-closed at least once across the run.
        assert stats["cluster"]["restarts"] >= 1
        opened = sum(
            breaker["transitions"]["open"]
            for breaker in stats["cluster"]["breakers"]
        )
        reclosed = sum(
            breaker["transitions"]["closed"]
            for breaker in stats["cluster"]["breakers"]
        )
        assert opened >= 1 and reclosed >= 1
