"""Tests for typing environments (contexts): sum, scaling, max, subenvironments."""

import pytest

from repro.core.environment import Context
from repro.core.errors import TypeCheckError
from repro.core.grades import EPS, Grade, INFINITY, ZERO
from repro.core.types import Monadic, NUM, UNIT


class TestBasics:
    def test_empty(self):
        context = Context.empty()
        assert len(context) == 0
        assert context.sensitivity_of("x") == ZERO
        assert str(context) == "·"

    def test_single(self):
        context = Context.single("x", NUM, 2)
        assert context.type_of("x") == NUM
        assert context.sensitivity_of("x") == Grade.constant(2)

    def test_zeros_from_skeleton(self):
        context = Context.zeros({"x": NUM, "y": UNIT})
        assert context.sensitivity_of("x").is_zero
        assert context.type_of("y") == UNIT

    def test_bind_and_remove(self):
        context = Context.empty().bind("x", NUM, 1).bind("y", NUM, 2)
        assert set(context.variables()) == {"x", "y"}
        assert "y" not in context.remove("y")

    def test_skeleton_round_trip(self):
        context = Context.single("x", NUM, 3)
        assert context.skeleton() == {"x": NUM}


class TestSemiring:
    def test_sum_adds_sensitivities(self):
        left = Context.single("x", NUM, 1)
        right = Context.single("x", NUM, 2)
        assert (left + right).sensitivity_of("x") == Grade.constant(3)

    def test_sum_disjoint_domains(self):
        left = Context.single("x", NUM, 1)
        right = Context.single("y", NUM, 2)
        combined = left + right
        assert combined.sensitivity_of("x") == Grade.constant(1)
        assert combined.sensitivity_of("y") == Grade.constant(2)

    def test_sum_requires_summable(self):
        left = Context.single("x", NUM, 1)
        right = Context.single("x", UNIT, 1)
        assert not left.summable_with(right)
        with pytest.raises(TypeCheckError):
            left + right

    def test_scale(self):
        context = Context.single("x", NUM, 2).scale(3)
        assert context.sensitivity_of("x") == Grade.constant(6)

    def test_scale_by_grade(self):
        context = Context.single("x", NUM, 2).scale(EPS)
        assert context.sensitivity_of("x") == 2 * EPS

    def test_scale_zero_times_infinity(self):
        context = Context.single("x", NUM, INFINITY).scale(0)
        assert context.sensitivity_of("x").is_zero

    def test_rmul_syntax(self):
        context = 2 * Context.single("x", NUM, 1)
        assert context.sensitivity_of("x") == Grade.constant(2)

    def test_max_with(self):
        left = Context.single("x", NUM, 1) + Context.single("y", NUM, 3)
        right = Context.single("x", NUM, 2)
        joined = left.max_with(right)
        assert joined.sensitivity_of("x") == Grade.constant(2)
        assert joined.sensitivity_of("y") == Grade.constant(3)

    def test_max_with_type_clash(self):
        with pytest.raises(TypeCheckError):
            Context.single("x", NUM, 1).max_with(Context.single("x", UNIT, 1))


class TestOrdering:
    def test_subenvironment_smaller_sensitivity(self):
        small = Context.single("x", NUM, 1)
        large = Context.single("x", NUM, 2)
        assert small.is_subenvironment_of(large)
        assert not large.is_subenvironment_of(small)

    def test_subenvironment_missing_variable(self):
        small = Context.single("x", NUM, 1)
        large = Context.single("x", NUM, 1) + Context.single("y", NUM, 1)
        assert small.is_subenvironment_of(large)
        assert not large.is_subenvironment_of(small)

    def test_zero_sensitivity_binding_imposes_nothing(self):
        small = Context.zeros({"x": NUM})
        assert small.is_subenvironment_of(Context.empty())

    def test_type_mismatch_breaks_order(self):
        small = Context.single("x", NUM, 1)
        large = Context.single("x", Monadic(EPS, NUM), 2)
        assert not small.is_subenvironment_of(large)

    def test_equality_and_hash(self):
        assert Context.single("x", NUM, 1) == Context.single("x", NUM, 1)
        assert hash(Context.single("x", NUM, 1)) == hash(Context.single("x", NUM, 1))
