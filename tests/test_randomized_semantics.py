"""Tests for the Section 7.2 operational rounding extensions."""

import random
from fractions import Fraction

import pytest

from repro.core import types as T
from repro.core.parser import parse_term
from repro.core.semantics.evaluator import build_environment, run_monadic, fp_config, ideal_config
from repro.core.semantics.randomized import (
    StochasticStatistics,
    run_nondeterministic,
    run_stochastic,
    run_with_rounding_schedule,
    stochastic_error_statistics,
)
from repro.floats.rounding import RoundingMode
from repro.monads import ExpectedProbabilisticMonad, MustNondeterministicMonad
from repro.metrics import RP_METRIC

EPS = Fraction(1, 2**52)


def _env(**values):
    skeleton = {name: T.NUM for name in values}
    return build_environment({k: Fraction(v) for k, v in values.items()}, skeleton)


class TestNondeterministicExecution:
    def test_exact_program_has_one_outcome(self):
        term = parse_term("s = add (|x, y|); rnd s")
        outcomes = run_nondeterministic(term, _env(x="0.25", y="0.5"))
        assert outcomes == {Fraction(3, 4)}

    def test_inexact_rounding_gives_both_neighbours(self):
        term = parse_term("rnd x")
        outcomes = run_nondeterministic(term, _env(x="0.1"))
        assert len(outcomes) == 2
        low, high = sorted(outcomes)
        assert low < Fraction(1, 10) < high

    def test_all_outcomes_satisfy_the_must_monad(self):
        term = parse_term("s = mul (x, x); rnd s")
        environment = _env(x="0.1")
        ideal = run_monadic(term, environment, ideal_config())
        outcomes = run_nondeterministic(term, environment)
        must = MustNondeterministicMonad(RP_METRIC)
        assert must.contains((ideal, frozenset(outcomes)), EPS)

    def test_two_roundings_give_up_to_four_paths(self):
        term = parse_term("a = mul (x, x); let t = rnd a; b = mul (t, t); rnd b")
        outcomes = run_nondeterministic(term, _env(x="0.1"))
        assert 2 <= len(outcomes) <= 4

    def test_directed_runs_are_among_the_nondeterministic_outcomes(self):
        term = parse_term("s = mul (x, y); rnd s")
        environment = _env(x="0.1", y="0.3")
        outcomes = run_nondeterministic(term, environment)
        ru = run_monadic(term, environment, fp_config(rounding=RoundingMode.TOWARD_POSITIVE))
        rd = run_monadic(term, environment, fp_config(rounding=RoundingMode.TOWARD_NEGATIVE))
        assert ru in outcomes and rd in outcomes

    def test_path_budget(self):
        term = parse_term("rnd x")
        with pytest.raises(RuntimeError):
            run_nondeterministic(term, _env(x="0.1"), max_paths=1)


class TestRoundingSchedules:
    def test_single_mode_schedule_matches_fp_config(self):
        term = parse_term("a = mul (x, x); let t = rnd a; b = mul (t, t); rnd b")
        environment = _env(x="0.1")
        scheduled = run_with_rounding_schedule(term, [RoundingMode.TOWARD_POSITIVE], environment)
        direct = run_monadic(term, environment, fp_config(rounding=RoundingMode.TOWARD_POSITIVE))
        assert scheduled == direct

    def test_mixed_schedule_lies_between_directed_runs(self):
        term = parse_term("a = mul (x, x); let t = rnd a; b = mul (t, t); rnd b")
        environment = _env(x="0.1")
        mixed = run_with_rounding_schedule(
            term, [RoundingMode.TOWARD_NEGATIVE, RoundingMode.TOWARD_POSITIVE], environment
        )
        ru = run_monadic(term, environment, fp_config(rounding=RoundingMode.TOWARD_POSITIVE))
        rd = run_monadic(term, environment, fp_config(rounding=RoundingMode.TOWARD_NEGATIVE))
        assert rd <= mixed <= ru

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            run_with_rounding_schedule(parse_term("rnd x"), [], _env(x="0.1"))


class TestStochasticRounding:
    def test_single_sample_is_a_neighbour(self):
        term = parse_term("rnd x")
        result = run_stochastic(term, _env(x="0.1"), rng=random.Random(1))
        outcomes = run_nondeterministic(term, _env(x="0.1"))
        assert result in outcomes

    def test_statistics_respect_the_worst_case_grade(self):
        term = parse_term("a = mul (x, x); let t = rnd a; b = mul (t, t); rnd b")
        stats = stochastic_error_statistics(term, _env(x="0.37"), samples=50, seed=3)
        assert isinstance(stats, StochasticStatistics)
        # Worst-case type-level bound for pow4 is 3*eps.
        assert stats.within_worst_case(3 * EPS)
        assert stats.within_expected(3 * EPS)
        assert stats.mean_error <= stats.max_error

    def test_statistics_see_more_than_one_result(self):
        term = parse_term("rnd x")
        stats = stochastic_error_statistics(term, _env(x="0.1"), samples=200, seed=5)
        assert stats.distinct_results == 2

    def test_expected_error_is_smaller_than_directed_worst_case(self):
        # Stochastic rounding of a single value: the expected error is strictly
        # below the worst neighbour distance (unless the value is exactly
        # halfway or representable).
        term = parse_term("rnd x")
        stats = stochastic_error_statistics(term, _env(x="0.1"), samples=400, seed=11)
        expected_monad_bound = stats.max_error
        assert stats.mean_error <= expected_monad_bound

    def test_exact_values_have_zero_error(self):
        term = parse_term("rnd x")
        stats = stochastic_error_statistics(term, _env(x="0.5"), samples=10, seed=2)
        assert stats.max_error == 0
        assert stats.distinct_results == 1
