"""Tests for the sensitivity-inference algorithm (Fig. 10)."""

from fractions import Fraction

import pytest

from repro.core import ast as A
from repro.core import types as T
from repro.core.errors import TypeInferenceError
from repro.core.grades import EPS, Grade, INFINITY, ZERO
from repro.core.inference import InferenceConfig, check_term, infer, infer_type
from repro.core.subtyping import is_subtype


def _mul(x: A.Term, y: A.Term) -> A.Term:
    return A.Op("mul", A.TensorPair(x, y))


def _add(x: A.Term, y: A.Term) -> A.Term:
    return A.Op("add", A.WithPair(x, y))


class TestValuesAndVariables:
    def test_variable(self):
        result = infer(A.Var("x"), {"x": T.NUM})
        assert result.type == T.NUM
        assert result.sensitivity_of("x") == 1

    def test_unbound_variable(self):
        with pytest.raises(TypeInferenceError):
            infer(A.Var("x"), {})

    def test_constant_uses_no_variables(self):
        result = infer(A.Const(3), {"x": T.NUM})
        assert result.type == T.NUM
        assert result.sensitivity_of("x").is_zero

    def test_unit(self):
        assert infer_type(A.UnitVal(), {}) == T.UNIT

    def test_booleans(self):
        assert infer_type(A.true_value(), {}) == T.bool_type()
        assert infer_type(A.false_value(), {}) == T.bool_type()


class TestPairs:
    def test_tensor_pair_adds_sensitivities(self):
        term = A.TensorPair(A.Var("x"), A.Var("x"))
        result = infer(term, {"x": T.NUM})
        assert result.type == T.TensorProduct(T.NUM, T.NUM)
        assert result.sensitivity_of("x") == 2

    def test_with_pair_takes_max(self):
        term = A.WithPair(A.Var("x"), A.Var("x"))
        result = infer(term, {"x": T.NUM})
        assert result.type == T.WithProduct(T.NUM, T.NUM)
        assert result.sensitivity_of("x") == 1

    def test_projection(self):
        term = A.Proj(1, A.WithPair(A.Var("x"), A.Var("y")))
        result = infer(term, {"x": T.NUM, "y": T.NUM})
        assert result.type == T.NUM

    def test_projection_requires_with_product(self):
        with pytest.raises(TypeInferenceError):
            infer(A.Proj(1, A.TensorPair(A.Var("x"), A.Var("y"))), {"x": T.NUM, "y": T.NUM})

    def test_tensor_elimination_scales(self):
        # let (a, b) = p in mul (a, b): both components used once -> p at 1.
        term = A.LetTensor("a", "b", A.Var("p"), _mul(A.Var("a"), A.Var("b")))
        result = infer(term, {"p": T.TensorProduct(T.NUM, T.NUM)})
        assert result.sensitivity_of("p") == 1

    def test_tensor_elimination_scales_by_max_usage(self):
        # a used twice, b once: the pair is consumed at sensitivity 2.
        body = _mul(A.Var("a"), _mul(A.Var("a"), A.Var("b")))
        bound = A.Let("t", _mul(A.Var("a"), A.Var("b")), _mul(A.Var("a"), A.Var("t")))
        term = A.LetTensor("a", "b", A.Var("p"), bound)
        result = infer(term, {"p": T.TensorProduct(T.NUM, T.NUM)})
        assert result.sensitivity_of("p") == 2


class TestOperations:
    def test_mul_is_two_sensitive_when_squaring(self):
        result = infer(_mul(A.Var("x"), A.Var("x")), {"x": T.NUM})
        assert result.type == T.NUM
        assert result.sensitivity_of("x") == 2

    def test_add_is_one_sensitive(self):
        result = infer(_add(A.Var("x"), A.Var("x")), {"x": T.NUM})
        assert result.sensitivity_of("x") == 1

    def test_sqrt_is_half_sensitive(self):
        term = A.Op("sqrt", A.Box(A.Var("x"), Fraction(1, 2)))
        result = infer(term, {"x": T.NUM})
        assert result.sensitivity_of("x") == Grade.constant(Fraction(1, 2))

    def test_is_pos_is_infinitely_sensitive(self):
        term = A.Op("is_pos", A.Box(A.Var("x"), INFINITY))
        result = infer(term, {"x": T.NUM})
        assert result.type == T.bool_type()
        assert result.sensitivity_of("x").is_infinite

    def test_wrong_argument_shape_rejected(self):
        with pytest.raises(TypeInferenceError):
            infer(A.Op("mul", A.WithPair(A.Var("x"), A.Var("x"))), {"x": T.NUM})

    def test_unknown_operation_rejected(self):
        with pytest.raises(Exception):
            infer(A.Op("sin", A.Var("x")), {"x": T.NUM})


class TestFunctions:
    def test_identity_lambda(self):
        term = A.Lambda("x", T.NUM, A.Var("x"))
        assert infer_type(term, {}) == T.Arrow(T.NUM, T.NUM)

    def test_constant_lambda_allowed(self):
        term = A.Lambda("x", T.NUM, A.Const(1))
        assert infer_type(term, {}) == T.Arrow(T.NUM, T.NUM)

    def test_two_sensitive_body_rejected(self):
        # pow2 must box its argument: λx. mul (x, x) is not 1-sensitive.
        term = A.Lambda("x", T.NUM, _mul(A.Var("x"), A.Var("x")))
        with pytest.raises(TypeInferenceError):
            infer(term, {})

    def test_pow2_with_boxed_argument(self):
        body = A.LetBox("x1", A.Var("x"), _mul(A.Var("x1"), A.Var("x1")))
        term = A.Lambda("x", T.Bang(2, T.NUM), body)
        assert infer_type(term, {}) == T.Arrow(T.Bang(2, T.NUM), T.NUM)

    def test_application(self):
        function = A.Lambda("x", T.NUM, _add(A.Var("x"), A.Const(1)))
        term = A.App(function, A.Var("y"))
        result = infer(term, {"y": T.NUM})
        assert result.type == T.NUM
        assert result.sensitivity_of("y") == 1

    def test_application_uses_subtyping(self):
        # A function expecting !3 num accepts a !5 num argument.
        function = A.Lambda("x", T.Bang(3, T.NUM), A.Const(1))
        term = A.App(function, A.Box(A.Var("y"), 5))
        result = infer(term, {"y": T.NUM})
        assert result.type == T.NUM

    def test_application_argument_mismatch(self):
        function = A.Lambda("x", T.Bang(3, T.NUM), A.Const(1))
        term = A.App(function, A.Box(A.Var("y"), 2))
        with pytest.raises(TypeInferenceError):
            infer(term, {"y": T.NUM})

    def test_application_of_non_function(self):
        with pytest.raises(TypeInferenceError):
            infer(A.App(A.Var("x"), A.Var("y")), {"x": T.NUM, "y": T.NUM})


class TestBoxing:
    def test_box_scales_context(self):
        term = A.Box(A.Var("x"), 3)
        result = infer(term, {"x": T.NUM})
        assert result.type == T.Bang(3, T.NUM)
        assert result.sensitivity_of("x") == 3

    def test_letbox_divides_demand(self):
        # let [y] = x in mul (y, y): demand 2 against a !2 box -> x at 1.
        term = A.LetBox("y", A.Var("x"), _mul(A.Var("y"), A.Var("y")))
        result = infer(term, {"x": T.Bang(2, T.NUM)})
        assert result.sensitivity_of("x") == 1

    def test_letbox_rounds_demand_up(self):
        # demand 3 against a !2 box -> scaling factor 3/2.
        body = _mul(A.Var("y"), _mul(A.Var("y"), A.Var("y")))
        bound = A.Let("t", _mul(A.Var("y"), A.Var("y")), _mul(A.Var("y"), A.Var("t")))
        term = A.LetBox("y", A.Var("x"), bound)
        result = infer(term, {"x": T.Bang(2, T.NUM)})
        assert result.sensitivity_of("x") == Grade.constant(Fraction(3, 2))

    def test_letbox_requires_bang(self):
        with pytest.raises(TypeInferenceError):
            infer(A.LetBox("y", A.Var("x"), A.Var("y")), {"x": T.NUM})

    def test_zero_scaled_box_cannot_be_used(self):
        term = A.LetBox("y", A.Var("x"), _mul(A.Var("y"), A.Var("y")))
        with pytest.raises(TypeInferenceError):
            infer(term, {"x": T.Bang(0, T.NUM)})


class TestMonad:
    def test_rnd_grade(self):
        result = infer(A.Rnd(A.Var("x")), {"x": T.NUM})
        assert result.type == T.Monadic(EPS, T.NUM)

    def test_rnd_requires_num(self):
        with pytest.raises(TypeInferenceError):
            infer(A.Rnd(A.UnitVal()), {})

    def test_ret_has_zero_grade(self):
        result = infer(A.Ret(A.Var("x")), {"x": T.NUM})
        assert result.type == T.Monadic(ZERO, T.NUM)

    def test_custom_rnd_grade(self):
        config = InferenceConfig().with_rnd_grade("2*eps")
        result = infer(A.Rnd(A.Var("x")), {"x": T.NUM}, config)
        assert result.type == T.Monadic(2 * EPS, T.NUM)

    def test_let_bind_accumulates(self):
        # pow4: two rounded squarings compose to 3*eps (Section 2.3).
        pow2 = A.Rnd(_mul(A.Var("x"), A.Var("x")))
        term = A.LetBind(
            "y",
            pow2,
            A.Let("s", _mul(A.Var("y"), A.Var("y")), A.Rnd(A.Var("s"))),
        )
        result = infer(A.Let("s0", _mul(A.Var("x"), A.Var("x")), A.LetBind("y", A.Rnd(A.Var("s0")), A.Let("s1", _mul(A.Var("y"), A.Var("y")), A.Rnd(A.Var("s1"))))), {"x": T.NUM})
        assert result.error_grade == 3 * EPS
        assert result.sensitivity_of("x") == 4

    def test_let_bind_requires_monadic_value(self):
        with pytest.raises(TypeInferenceError):
            infer(A.LetBind("y", A.Var("x"), A.Ret(A.Var("y"))), {"x": T.NUM})

    def test_let_bind_requires_monadic_body(self):
        term = A.LetBind("y", A.Rnd(A.Var("x")), A.Var("y"))
        with pytest.raises(TypeInferenceError):
            infer(term, {"x": T.NUM})

    def test_error_propagation_through_sensitivity(self):
        # let-bind(v, y. rnd(mul (y, y))) where v : M[eps]num -> 2*eps + eps.
        term = A.LetBind(
            "y",
            A.Var("v"),
            A.Let("s", _mul(A.Var("y"), A.Var("y")), A.Rnd(A.Var("s"))),
        )
        result = infer(term, {"v": T.Monadic(EPS, T.NUM)})
        assert result.error_grade == 3 * EPS
        assert result.sensitivity_of("v") == 2


class TestCase:
    def test_branches_join(self):
        guard = A.Op("is_pos", A.Box(A.Var("x"), INFINITY))
        term = A.Let(
            "c",
            guard,
            A.Case(
                A.Var("c"),
                "t",
                A.Rnd(A.Var("x")),
                "f",
                A.Ret(A.Const(1)),
            ),
        )
        result = infer(term, {"x": T.NUM})
        assert result.error_grade == EPS
        assert result.sensitivity_of("x").is_infinite

    def test_case_requires_sum(self):
        with pytest.raises(TypeInferenceError):
            infer(A.Case(A.Var("x"), "a", A.Var("a"), "b", A.Var("b")), {"x": T.NUM})

    def test_incompatible_branches_rejected(self):
        term = A.Case(A.Var("c"), "a", A.Const(1), "b", A.UnitVal())
        with pytest.raises(Exception):
            infer(term, {"c": T.bool_type()})


class TestLetAndChecking:
    def test_unused_let_allowed_by_default(self):
        term = A.Let("y", A.Const(1), A.Var("x"))
        result = infer(term, {"x": T.NUM})
        assert result.type == T.NUM

    def test_unused_let_rejected_when_strict(self):
        config = InferenceConfig(allow_unused_let=False)
        term = A.Let("y", A.Const(1), A.Var("x"))
        with pytest.raises(TypeInferenceError):
            infer(term, {"x": T.NUM}, config)

    def test_check_term_success(self):
        result = check_term(A.Rnd(A.Var("x")), T.Monadic(2 * EPS, T.NUM), {"x": T.NUM})
        assert is_subtype(result.type, T.Monadic(2 * EPS, T.NUM))

    def test_check_term_failure(self):
        with pytest.raises(TypeInferenceError):
            check_term(A.Rnd(A.Var("x")), T.Monadic(ZERO, T.NUM), {"x": T.NUM})

    def test_shadowing_inner_binder(self):
        # The inner x shadows the skeleton x; the outer x is not consumed.
        term = A.Let("x", A.Const(2), _mul(A.Var("x"), A.Var("x")))
        result = infer(term, {"x": T.NUM})
        assert result.sensitivity_of("x").is_zero


class TestIterativeEngineAtScale:
    """The explicit-stack engine: no recursion limit, deep and wide terms."""

    def test_50k_deep_term_under_default_recursion_limit(self):
        # A 50_000-deep chain of monadic sequencing, built iteratively.  The
        # seed engine needed sys.setrecursionlimit(20_000); the iterative
        # engine must infer this under the interpreter default (or lower)
        # without touching the limit.
        import sys

        depth = 50_000
        term: A.Term = A.Rnd(A.Var("x0"))
        skeleton = {"x0": T.NUM}
        for index in range(1, depth):
            name = f"x{index}"
            skeleton[name] = T.NUM
            term = A.LetBind(f"t{index}", A.Rnd(A.Var(name)), term)

        previous = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(1_000)
            result = infer(term, skeleton)
            assert sys.getrecursionlimit() == 1_000, "infer must not touch the limit"
        finally:
            sys.setrecursionlimit(previous)
        assert result.type == T.Monadic(EPS, T.NUM)
        assert result.sensitivity_of("x0") == 1

    def test_infer_does_not_raise_recursion_limit(self):
        import sys

        previous = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(999)
            infer(A.Rnd(A.Var("x")), {"x": T.NUM})
            assert sys.getrecursionlimit() == 999
        finally:
            sys.setrecursionlimit(previous)

    def test_deep_nested_binders_shadowing(self):
        # Nested lets re-binding the same name: the undo log must restore the
        # right shadowed entry at every level.
        term: A.Term = _mul(A.Var("x"), A.Var("x"))
        for _ in range(2_000):
            term = A.Let("x", _add(A.Var("x"), A.Var("y")), term)
        result = infer(term, {"x": T.NUM, "y": T.NUM})
        assert result.type == T.NUM
        assert result.sensitivity_of("x") == 2
        # Every let layer contributes sensitivity 2 (via the body's x-use
        # doubling through the shadowing chain is collapsed by max/add).
        assert not result.sensitivity_of("y").is_zero

    def test_matches_reference_engine_on_families(self):
        from repro.perf.families import FAMILIES
        from repro.perf.reference import reference_infer

        for name, family in FAMILIES.items():
            term, skeleton, _nodes, _dag = family.instantiate(24)
            result = infer(term, skeleton)
            reference_ctx, reference_ty = reference_infer(term, skeleton)
            assert result.type == reference_ty, name
            assert result.context.as_dict() == reference_ctx.as_dict(), name
