"""Tests for the IEEE-754 substrate: formats, rounding operators, ULP."""

import math
import struct
from fractions import Fraction

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.floats import (
    BINARY32,
    BINARY64,
    BINARY128,
    RoundingMode,
    StandardModel,
    bits_of_error,
    format_table,
    relative_error,
    round_to_format,
    round_to_precision,
    rounding_mode_table,
    ulp,
    ulp_error,
    unit_roundoff,
)
from repro.floats.rounding import round_integer

finite_doubles = st.floats(
    allow_nan=False, allow_infinity=False, min_value=1e-300, max_value=1e300
)
rationals = st.fractions(min_value=Fraction(1, 10**9), max_value=Fraction(10**9))


class TestFormats:
    def test_table1_parameters(self):
        rows = {row["format"]: row for row in format_table()}
        assert rows["binary32"]["p"] == 24 and rows["binary32"]["emax"] == 127
        assert rows["binary64"]["p"] == 53 and rows["binary64"]["emax"] == 1023
        assert rows["binary128"]["p"] == 113 and rows["binary128"]["emax"] == 16383
        for row in rows.values():
            assert row["emin"] == 1 - row["emax"]

    def test_unit_roundoffs(self):
        assert BINARY64.unit_roundoff_directed == Fraction(1, 2**52)
        assert BINARY64.unit_roundoff_nearest == Fraction(1, 2**53)
        assert BINARY32.unit_roundoff_directed == Fraction(1, 2**23)

    def test_extreme_values_match_ieee(self):
        assert float(BINARY64.largest_finite) == struct.unpack("<d", b"\xff\xff\xff\xff\xff\xff\xef\x7f")[0]
        assert float(BINARY64.smallest_normal) == 2.2250738585072014e-308
        assert float(BINARY64.smallest_subnormal) == 5e-324

    def test_representability(self):
        assert BINARY64.is_representable(Fraction(1, 2))
        assert BINARY64.is_representable(Fraction(float(0.1)))
        assert not BINARY64.is_representable(Fraction(1, 10))
        assert not BINARY64.is_representable(BINARY64.largest_finite * 2)
        assert BINARY64.is_representable(Fraction(0))

    def test_table2_unit_roundoffs(self):
        rows = {row["mode"]: row for row in rounding_mode_table(53)}
        assert rows["RU"]["unit_roundoff"] == Fraction(1, 2**52)
        assert rows["RN"]["unit_roundoff"] == Fraction(1, 2**53)
        assert unit_roundoff(24, RoundingMode.TOWARD_POSITIVE) == Fraction(1, 2**23)


class TestRoundInteger:
    @pytest.mark.parametrize(
        "value, mode, expected",
        [
            (Fraction(5, 2), RoundingMode.TOWARD_POSITIVE, 3),
            (Fraction(5, 2), RoundingMode.TOWARD_NEGATIVE, 2),
            (Fraction(5, 2), RoundingMode.NEAREST_EVEN, 2),
            (Fraction(7, 2), RoundingMode.NEAREST_EVEN, 4),
            (Fraction(-5, 2), RoundingMode.TOWARD_ZERO, -2),
            (Fraction(-5, 2), RoundingMode.TOWARD_NEGATIVE, -3),
            (Fraction(3), RoundingMode.TOWARD_POSITIVE, 3),
        ],
    )
    def test_directed_and_nearest(self, value, mode, expected):
        assert round_integer(value, mode) == expected


class TestRoundToPrecision:
    def test_round_up_is_an_upper_bound(self):
        value = Fraction(1, 10)
        rounded = round_to_precision(value, 53, RoundingMode.TOWARD_POSITIVE)
        assert rounded >= value

    def test_round_down_is_a_lower_bound(self):
        value = Fraction(1, 10)
        rounded = round_to_precision(value, 53, RoundingMode.TOWARD_NEGATIVE)
        assert rounded <= value

    def test_nearest_matches_python_float(self):
        for text in ("0.1", "0.3", "2.675", "1e-5", "123.456"):
            value = Fraction(text)
            rounded = round_to_precision(value, 53, RoundingMode.NEAREST_EVEN)
            assert rounded == Fraction(float(text))

    def test_exact_values_unchanged(self):
        for mode in RoundingMode:
            assert round_to_precision(Fraction(3, 4), 53, mode) == Fraction(3, 4)

    def test_zero(self):
        assert round_to_precision(Fraction(0), 53, RoundingMode.TOWARD_POSITIVE) == 0

    def test_negative_values_round_towards_positive(self):
        value = Fraction(-1, 10)
        rounded = round_to_precision(value, 53, RoundingMode.TOWARD_POSITIVE)
        assert rounded >= value

    @given(value=rationals)
    @settings(max_examples=60, deadline=None)
    def test_faithfulness(self, value):
        """RD(x) <= x <= RU(x) and both are within one ulp of x."""
        down = round_to_precision(value, 53, RoundingMode.TOWARD_NEGATIVE)
        up = round_to_precision(value, 53, RoundingMode.TOWARD_POSITIVE)
        assert down <= value <= up
        assert up - down <= ulp(value)

    @given(value=rationals)
    @settings(max_examples=60, deadline=None)
    def test_standard_model_bound(self, value):
        """Equation (2): the relative error of one rounding is at most u."""
        for mode in (RoundingMode.TOWARD_POSITIVE, RoundingMode.NEAREST_EVEN):
            rounded = round_to_precision(value, 53, mode)
            u = unit_roundoff(53, mode)
            assert relative_error(value, rounded) <= u

    @given(value=rationals)
    @settings(max_examples=40, deadline=None)
    def test_nearest_agrees_with_python(self, value):
        rounded = round_to_precision(value, 53, RoundingMode.NEAREST_EVEN)
        assert float(rounded) == float(value)

    @given(a=rationals, b=rationals)
    @settings(max_examples=40, deadline=None)
    def test_monotonicity(self, a, b):
        assume(a <= b)
        for mode in (RoundingMode.TOWARD_POSITIVE, RoundingMode.TOWARD_NEGATIVE):
            assert round_to_precision(a, 53, mode) <= round_to_precision(b, 53, mode)

    @given(value=rationals)
    @settings(max_examples=40, deadline=None)
    def test_idempotence(self, value):
        for mode in RoundingMode:
            once = round_to_precision(value, 53, mode)
            assert round_to_precision(once, 53, mode) == once


class TestRoundToFormat:
    def test_normal_value(self):
        result = round_to_format(Fraction(1, 10), BINARY64, RoundingMode.NEAREST_EVEN)
        assert result.value == Fraction(float(0.1))
        assert result.inexact and not result.underflow and not result.overflow

    def test_overflow_to_infinity(self):
        result = round_to_format(BINARY64.largest_finite * 2, BINARY64, RoundingMode.TOWARD_POSITIVE)
        assert result.overflow and result.value is None
        assert result.is_exceptional

    def test_overflow_saturates_for_directed_down(self):
        result = round_to_format(BINARY64.largest_finite * 2, BINARY64, RoundingMode.TOWARD_NEGATIVE)
        assert result.value == BINARY64.largest_finite
        assert not result.is_exceptional

    def test_subnormal_result_flags_underflow(self):
        tiny = BINARY64.smallest_normal / 3
        result = round_to_format(tiny, BINARY64, RoundingMode.NEAREST_EVEN)
        assert result.underflow
        assert result.value is not None and result.value > 0

    def test_underflow_to_zero_is_exceptional(self):
        result = round_to_format(
            BINARY64.smallest_subnormal / 4, BINARY64, RoundingMode.TOWARD_NEGATIVE
        )
        assert result.value == 0 and result.is_exceptional

    def test_binary32_rounding(self):
        result = round_to_format(Fraction(1, 10), BINARY32, RoundingMode.NEAREST_EVEN)
        assert float(result.value) == struct.unpack("<f", struct.pack("<f", 0.1))[0]

    @given(value=finite_doubles)
    @settings(max_examples=50, deadline=None)
    def test_doubles_are_fixed_points(self, value):
        fraction = Fraction(value)
        result = round_to_format(fraction, BINARY64, RoundingMode.NEAREST_EVEN)
        assert result.value == fraction
        assert not result.inexact


class TestUlp:
    def test_ulp_of_one(self):
        assert ulp(Fraction(1), BINARY64) == Fraction(1, 2**52)

    def test_ulp_error_counts_grid_points(self):
        x = Fraction(1)
        y = Fraction(1) + Fraction(3, 2**52)
        assert ulp_error(x, y, BINARY64) == 3

    def test_ulp_error_zero_for_equal(self):
        assert ulp_error(Fraction(1, 3), Fraction(1, 3)) == 0

    def test_bits_of_error(self):
        x = Fraction(1)
        y = Fraction(1) + Fraction(8, 2**52)
        assert bits_of_error(x, y, BINARY64) == pytest.approx(3.0)

    def test_ulp_error_across_binades(self):
        # Between 1 and 2 there are 2^52 representable steps.
        assert ulp_error(Fraction(1), Fraction(2), BINARY64) == 2**52


class TestStandardModel:
    def test_operations_round(self):
        model = StandardModel()
        assert model.add(Fraction(1, 10), Fraction(2, 10)) >= Fraction(3, 10)
        assert model.mul(Fraction(1, 3), Fraction(3)) == Fraction(
            round_to_precision(Fraction(1), 53, RoundingMode.TOWARD_POSITIVE)
        )

    def test_delta_is_bounded_by_unit_roundoff(self):
        model = StandardModel()
        delta = model.delta(Fraction(1, 3))
        assert abs(delta) <= model.unit_roundoff

    def test_sqrt_is_correctly_rounded_upwards(self):
        model = StandardModel()
        result = model.sqrt(Fraction(2))
        assert result * result >= 2
        assert relative_error(Fraction(2), result * result) <= 3 * model.unit_roundoff
