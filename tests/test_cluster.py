"""Tests for the cluster layer behind ``repro serve --workers N``.

Three groups:

* :class:`TestHashRing` — pure property tests (hypothesis) for the
  consistent-hash ring: determinism, minimal remapping when the fleet
  grows or shrinks by one slot, and near-uniform key distribution.
* :class:`TestRouting` — a module-scoped 4-worker cluster, memory-only:
  concurrent duplicate keys infer exactly once, routing is stable across
  reconnects, pipelined responses correlate out of order, and the
  aggregated ``/stats`` payload has the documented shape.
* :class:`TestSupervision` — a module-scoped 2-worker cluster with a
  disk tier: cross-request judgement-memo hits inside each worker,
  SIGKILL fault injection (retryable error, respawn, disk-cache
  handoff) and rolling restarts.

Worker processes are fresh ``spawn`` interpreters, so the cluster
fixtures are deliberately module-scoped — each fleet is paid for once.
"""

import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchsuite.paper_examples import PAPER_EXAMPLES
from repro.perf.service_bench import _RouterHarness, bench_sources
from repro.service.client import PipelinedClient, ServiceClient
from repro.service.cluster import HashRing
from repro.service.server import ServiceConfig

KEYS = [f"key-{index}" for index in range(1500)]


def _owners(ring, keys):
    return {key: ring.lookup(key) for key in keys}


class TestHashRing:
    def test_rings_with_the_same_slots_agree(self):
        first = HashRing(range(5))
        second = HashRing(range(5))
        assert _owners(first, KEYS) == _owners(second, KEYS)

    def test_slot_order_does_not_matter(self):
        assert _owners(HashRing([0, 1, 2, 3]), KEYS) == _owners(
            HashRing([3, 1, 0, 2]), KEYS
        )

    def test_rejects_empty_and_degenerate_rings(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing([0], virtual_nodes=0)

    @settings(max_examples=15, deadline=None)
    @given(slots=st.integers(min_value=1, max_value=8))
    def test_adding_a_slot_only_moves_keys_to_the_new_slot(self, slots):
        before = _owners(HashRing(range(slots)), KEYS)
        after = _owners(HashRing(range(slots + 1)), KEYS)
        moved = 0
        for key in KEYS:
            if after[key] != before[key]:
                # Consistent hashing never shuffles keys *between*
                # surviving slots — a key either stays or goes to the
                # newcomer.
                assert after[key] == slots
                moved += 1
        # ~1/(N+1) of the keys move (the newcomer's fair share); 2.5x
        # covers virtual-node variance at 64 points per slot.
        assert moved / len(KEYS) <= 2.5 / (slots + 1)

    @settings(max_examples=15, deadline=None)
    @given(
        slots=st.integers(min_value=2, max_value=8),
        removed=st.integers(min_value=0, max_value=7),
    )
    def test_removing_a_slot_strands_only_its_own_keys(self, slots, removed):
        removed %= slots
        before = _owners(HashRing(range(slots)), KEYS)
        survivors = [slot for slot in range(slots) if slot != removed]
        after = _owners(HashRing(survivors), KEYS)
        for key in KEYS:
            if before[key] != removed:
                assert after[key] == before[key]

    @settings(max_examples=15, deadline=None)
    @given(slots=st.integers(min_value=2, max_value=8))
    def test_distribution_is_within_2x_of_uniform(self, slots):
        ring = HashRing(range(slots))
        counts = {slot: 0 for slot in range(slots)}
        for key in KEYS:
            counts[ring.lookup(key)] += 1
        uniform = len(KEYS) / slots
        assert max(counts.values()) <= 2.0 * uniform
        assert min(counts.values()) >= 0.5 * uniform


# ---------------------------------------------------------------------------
# 4-worker routing cluster (memory-only)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def cluster4():
    with _RouterHarness(4, ServiceConfig(queue_size=2048)) as harness:
        yield harness


def _aggregated(port):
    with ServiceClient(port=port, timeout=60) as client:
        return client.stats()


class TestRouting:
    def test_concurrent_duplicate_keys_infer_exactly_once(self, cluster4):
        corpus = bench_sources()[:8]
        before = _aggregated(cluster4.port)["service"].get("inferences", 0)
        errors = []

        def worker(offset):
            try:
                with ServiceClient(port=cluster4.port, timeout=120) as client:
                    for step in range(len(corpus)):
                        name, kind, source = corpus[(offset + step) % len(corpus)]
                        response = client.analyze(source, kind=kind, name=name)
                        if not response["report"]["ok"]:
                            errors.append(f"{name}: {response['report'].get('error')}")
            except Exception as error:
                errors.append(repr(error))

        threads = [threading.Thread(target=worker, args=(index,)) for index in range(64)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[:5]

        stats = _aggregated(cluster4.port)
        # 64 clients x 8 programs = 512 requests, but every key was
        # inferred exactly once on exactly one shard: the rest were
        # cache hits or coalesced onto the one in-flight inference.
        assert stats["service"]["inferences"] - before == len(corpus)

    def test_routing_is_stable_across_reconnects(self, cluster4):
        name, kind, source = bench_sources()[8]
        per_slot_before = [
            (entry["stats"]["service"].get("analyze_requests", 0) if entry["stats"] else 0)
            for entry in _aggregated(cluster4.port)["workers"]
        ]
        for _ in range(3):  # a fresh connection every time
            with ServiceClient(port=cluster4.port, timeout=120) as client:
                assert client.analyze(source, kind=kind, name=name)["status"] == "ok"
        per_slot_after = [
            (entry["stats"]["service"].get("analyze_requests", 0) if entry["stats"] else 0)
            for entry in _aggregated(cluster4.port)["workers"]
        ]
        deltas = [after - before for before, after in zip(per_slot_before, per_slot_after)]
        # All three requests landed on one slot; no other slot saw any.
        assert sorted(deltas) == [0, 0, 0, 3]

    def test_pipelined_responses_correlate_out_of_order(self, cluster4):
        corpus = bench_sources()
        # Reports are content-addressed: corpus entries whose sources
        # fingerprint identically share one key (and the first
        # requester's report).  A sequential pass records each entry's
        # expected (key, report) pair; the pipelined pass then proves
        # out-of-order responses land on the right requests.
        expected = []
        with ServiceClient(port=cluster4.port, timeout=120) as client:
            for name, kind, source in corpus:
                response = client.analyze(source, kind=kind, name=name)
                expected.append((response["key"], response["report"]["name"]))
        with PipelinedClient(port=cluster4.port, timeout=120) as client:
            submitted = {}
            for round_index in range(2):
                for index, (name, kind, source) in enumerate(corpus):
                    request_id = client.submit(
                        {"op": "analyze", "source": source, "kind": kind, "name": name}
                    )
                    submitted[request_id] = index
            responses = client.collect(list(reversed(list(submitted))))
            for request_id, response in zip(reversed(list(submitted)), responses):
                assert response["id"] == request_id
                assert response["status"] == "ok"
                key, report_name = expected[submitted[request_id]]
                assert response["key"] == key
                assert response["report"]["name"] == report_name

    def test_single_worker_is_wire_compatible(self):
        # A 1-worker cluster answers the PR 5 protocol byte-for-byte the
        # way the sequential tests expect: plain requests, ordered
        # responses, no ids.
        with _RouterHarness(1, ServiceConfig(queue_size=256)) as harness:
            with ServiceClient(port=harness.port, timeout=120) as client:
                assert client.ping()
                name, kind, source = bench_sources()[0]
                response = client.analyze(source, kind=kind, name=name)
                assert response["status"] == "ok"
                assert "id" not in response
                assert response["report"]["ok"]

    def test_aggregated_stats_have_the_cluster_shape(self, cluster4):
        stats = _aggregated(cluster4.port)
        cluster = stats["cluster"]
        assert cluster["workers"] == 4
        assert cluster["alive"] == 4
        for counter in ("requests", "routed", "route_memo_hits", "shed", "worker_failures"):
            assert counter in cluster
        workers = stats["workers"]
        assert [entry["slot"] for entry in workers] == [0, 1, 2, 3]
        for entry in workers:
            assert entry["alive"] is True
            assert entry["stats"] is not None
            assert "service" in entry["stats"] and "cache" in entry["stats"]
        # Aggregates are sums of the per-worker blocks.
        assert stats["service"]["requests"] == sum(
            entry["stats"]["service"]["requests"] for entry in workers
        )


# ---------------------------------------------------------------------------
# 2-worker supervision cluster (disk tier)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def cluster2(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("cluster-cache")
    config = ServiceConfig(queue_size=1024, cache_dir=str(cache_dir))
    with _RouterHarness(2, config) as harness:
        yield harness


def _wait_for_alive(port, expected, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            stats = _aggregated(port)
            if stats["cluster"]["alive"] >= expected:
                return stats
        except Exception:
            pass
        time.sleep(0.25)
    raise AssertionError(f"cluster did not report {expected} live workers in time")


class TestSupervision:
    def test_each_worker_gets_cross_request_memo_hits(self, cluster2):
        # Programs that share whole definitions (FMA, pow2r, mulfp
        # families): whichever worker a program hashes to, its sibling
        # programs replay memoized subterm judgements when co-located.
        names = ["FMA", "Horner2", "Horner2_with_error", "pow2_rounded", "pow4", "MA", "case1"]
        with ServiceClient(port=cluster2.port, timeout=120) as client:
            for name in names:
                response = client.analyze(
                    PAPER_EXAMPLES[name].source, kind="lnum", name=name
                )
                assert response["status"] == "ok"
        stats = _aggregated(cluster2.port)
        # The aggregate proves reuse happened; the per-worker blocks
        # prove it happened *inside* a worker (the memo is per-process).
        assert stats["cache"]["judgement_memo"]["hits"] > 0
        per_worker = [
            entry["stats"]["cache"]["judgement_memo"]["hits"]
            for entry in stats["workers"]
            if entry["stats"] is not None
        ]
        assert any(hits > 0 for hits in per_worker)

    def test_killed_worker_yields_retryable_error_then_recovers(self, cluster2):
        router = cluster2.router
        source = PAPER_EXAMPLES["FMA"].source
        with ServiceClient(port=cluster2.port, timeout=120) as client:
            client.analyze(source, kind="lnum", name="FMA")  # persists to the disk tier

        restarts_before = _aggregated(cluster2.port)["cluster"]["restarts"]
        with PipelinedClient(port=cluster2.port, timeout=60) as client:
            request_id = client.submit(
                {"op": "validate", "source": source, "kind": "lnum",
                 "samples": 8192, "points": 4, "seed": 0}
            )
            client.flush()
            time.sleep(0.4)  # let the worker get well into the sampling run
            victim = None
            for slot, link in enumerate(router._links):
                # Skip internal supervision probes; only a real client
                # request marks the slot as the one to kill.
                for router_id in list(link.outstanding):
                    entry = router._pending.get(router_id)
                    if entry is not None and not entry.internal:
                        victim = slot
                        break
                if victim is not None:
                    break
            assert victim is not None, "the slow request never reached a worker"
            router.cluster.handles[victim].kill()
            response = client.drain(request_id)  # bounded by the socket timeout
        assert response["status"] == "error"
        assert response["code"] == 503
        assert response["retryable"] is True

        stats = _wait_for_alive(cluster2.port, expected=2)
        assert stats["cluster"]["restarts"] > restarts_before
        assert stats["cluster"]["worker_failures"] >= 1
        assert stats["workers"][victim]["generation"] >= 1

        with ServiceClient(port=cluster2.port, timeout=120) as client:
            # The retried request succeeds on the respawned worker ...
            retried = client.validate(source, kind="lnum", samples=64, points=2, seed=0)
            assert retried["status"] == "ok"
            # ... and the pre-crash analysis comes back from the disk
            # handoff: the fresh process has an empty memory tier, so a
            # cached response here can only come from the slot's
            # inherited cache directory.
            again = client.analyze(source, kind="lnum", name="FMA")
            assert again["status"] == "ok"
            assert again["cached"] is True
        stats = _aggregated(cluster2.port)
        assert stats["workers"][victim]["stats"]["cache"]["disk_hits"] >= 1

    def test_rolling_restart_bumps_generations_and_keeps_caches(self, cluster2):
        import asyncio

        before = _aggregated(cluster2.port)
        generations = [entry["generation"] for entry in before["workers"]]
        source = PAPER_EXAMPLES["pow4"].source
        with ServiceClient(port=cluster2.port, timeout=120) as client:
            client.analyze(source, kind="lnum", name="pow4")

        future = asyncio.run_coroutine_threadsafe(
            cluster2.router.rolling_restart(), cluster2.loop
        )
        result = future.result(timeout=120)
        assert result == {"replaced": 2, "workers": 2}

        after = _wait_for_alive(cluster2.port, expected=2)
        for entry, generation in zip(after["workers"], generations):
            assert entry["generation"] == generation + 1
            assert entry["alive"] is True
        with ServiceClient(port=cluster2.port, timeout=120) as client:
            response = client.analyze(source, kind="lnum", name="pow4")
            assert response["status"] == "ok"
            assert response["cached"] is True
