"""Unit tests for the grade/sensitivity algebra (repro.core.grades)."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.core.grades import (
    EPS,
    Grade,
    GradeError,
    INFINITY,
    ONE,
    SymbolRegistry,
    ZERO,
    as_grade,
    parse_grade,
)


class TestConstruction:
    def test_constant(self):
        grade = Grade.constant(3)
        assert grade.is_constant and grade.is_finite
        assert grade.evaluate() == 3

    def test_constant_fraction(self):
        assert Grade.constant(Fraction(1, 2)).evaluate() == Fraction(1, 2)

    def test_negative_constant_rejected(self):
        with pytest.raises(GradeError):
            Grade.constant(-1)

    def test_symbol(self):
        assert EPS.symbols() == ("eps",)
        assert EPS.evaluate() == Fraction(1, 2**52)

    def test_infinite(self):
        assert INFINITY.is_infinite
        assert not INFINITY.is_finite

    def test_zero_is_zero(self):
        assert ZERO.is_zero
        assert not ONE.is_zero

    def test_as_grade_from_int_float_fraction(self):
        assert as_grade(2) == Grade.constant(2)
        assert as_grade(0.5) == Grade.constant(Fraction(1, 2))
        assert as_grade(Fraction(3, 4)) == Grade.constant(Fraction(3, 4))

    def test_as_grade_from_string(self):
        assert as_grade("2*eps") == EPS * 2

    def test_as_grade_infinity_float(self):
        assert as_grade(float("inf")).is_infinite


class TestArithmetic:
    def test_addition(self):
        assert (EPS + EPS) == 2 * EPS

    def test_addition_with_constant(self):
        grade = EPS + 1
        assert grade.coefficient() == 1
        assert grade.coefficient("eps") == 1

    def test_multiplication_by_scalar(self):
        assert (3 * EPS).coefficient("eps") == 3

    def test_multiplication_of_symbols_is_polynomial(self):
        grade = EPS * EPS
        assert grade.coefficient("eps", "eps") == 1

    def test_zero_times_infinity_is_zero(self):
        assert (ZERO * INFINITY).is_zero
        assert (INFINITY * ZERO).is_zero

    def test_infinity_absorbs_addition(self):
        assert (INFINITY + EPS).is_infinite

    def test_infinity_absorbs_positive_multiplication(self):
        assert (INFINITY * ONE).is_infinite

    def test_distributes(self):
        left = (EPS + 1) * 2
        right = 2 * EPS + 2
        assert left == right


class TestOrdering:
    def test_constant_order(self):
        assert Grade.constant(1) <= Grade.constant(2)
        assert Grade.constant(2) > Grade.constant(1)

    def test_symbolic_order_uses_registry(self):
        assert EPS < ONE
        assert 2 * EPS < 3 * EPS

    def test_infinity_is_top(self):
        assert EPS <= INFINITY
        assert not (INFINITY <= EPS)
        assert INFINITY <= INFINITY

    def test_max_min(self):
        assert (2 * EPS).max(3 * EPS) == 3 * EPS
        assert (2 * EPS).min(3 * EPS) == 2 * EPS

    def test_numerically_equal(self):
        assert (2 * EPS).numerically_equal(Grade.constant(Fraction(1, 2**51)))
        assert not (2 * EPS) == Grade.constant(Fraction(1, 2**51))

    def test_unknown_symbol_comparison_raises(self):
        grade = Grade.symbol("mystery_symbol")
        with pytest.raises(GradeError):
            grade <= ONE


class TestHashingAndDisplay:
    def test_equal_grades_hash_equal(self):
        assert hash(EPS + EPS) == hash(2 * EPS)

    def test_str_constant(self):
        assert str(Grade.constant(3)) == "3"
        assert str(Grade.constant(Fraction(1, 2))) == "1/2"

    def test_str_symbolic(self):
        assert str(2 * EPS) == "2*eps"
        assert str(EPS) == "eps"
        assert str(INFINITY) == "inf"
        assert str(ZERO) == "0"

    def test_str_mixed(self):
        assert str(EPS + 3) == "3 + eps"


class TestParsing:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("0", ZERO),
            ("1", ONE),
            ("eps", EPS),
            ("2*eps", 2 * EPS),
            ("2.0", Grade.constant(2)),
            ("0.5", Grade.constant(Fraction(1, 2))),
            ("3*eps + 4", 3 * EPS + 4),
            ("eps + eps", 2 * EPS),
            ("(1 + 1) * eps", 2 * EPS),
            ("inf", INFINITY),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_grade(text) == expected

    def test_parse_scientific(self):
        assert parse_grade("1e-3") == Grade.constant(Fraction("1e-3"))

    def test_parse_error_on_garbage(self):
        with pytest.raises(GradeError):
            parse_grade("2 *")

    def test_parse_error_on_bad_character(self):
        with pytest.raises(GradeError):
            parse_grade("2 @ eps")


class TestRegistry:
    def test_register_and_lookup(self):
        registry = SymbolRegistry()
        registry.register("u32", Fraction(1, 2**23))
        assert registry.value_of("u32") == Fraction(1, 2**23)

    def test_register_rejects_nonpositive(self):
        registry = SymbolRegistry()
        with pytest.raises(GradeError):
            registry.register("bad", 0)

    def test_unknown_symbol(self):
        registry = SymbolRegistry()
        with pytest.raises(GradeError):
            registry.value_of("nope")

    def test_evaluate_with_custom_registry(self):
        registry = SymbolRegistry({"eps": Fraction(1, 2**23)})
        assert (2 * EPS).evaluate(registry) == Fraction(1, 2**22)


class TestProperties:
    small = st.fractions(min_value=0, max_value=10)

    @given(small, small)
    def test_addition_commutative(self, a, b):
        assert Grade.constant(a) + Grade.constant(b) == Grade.constant(b) + Grade.constant(a)

    @given(small, small, small)
    def test_addition_associative(self, a, b, c):
        ga, gb, gc = map(Grade.constant, (a, b, c))
        assert (ga + gb) + gc == ga + (gb + gc)

    @given(small, small)
    def test_multiplication_matches_fraction_product(self, a, b):
        assert (Grade.constant(a) * Grade.constant(b)).evaluate() == a * b

    @given(small, small, small)
    def test_multiplication_distributes_over_addition(self, a, b, c):
        ga, gb, gc = map(Grade.constant, (a, b, c))
        assert ga * (gb + gc) == ga * gb + ga * gc

    @given(small)
    def test_order_reflexive(self, a):
        grade = Grade.constant(a)
        assert grade <= grade

    @given(small, small)
    def test_order_total(self, a, b):
        ga, gb = Grade.constant(a), Grade.constant(b)
        assert ga <= gb or gb <= ga
