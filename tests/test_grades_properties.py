"""Property tests for the interned Grade/Context kernel.

The interned :class:`~repro.core.grades.Grade` ring and the persistent
:class:`~repro.core.environment.Context` algebra must agree with the naive
reference implementations in :mod:`repro.perf.reference` — plain monomial
dicts and flat binding dicts — on randomized inputs, and must satisfy the
algebraic laws the typing rules rely on: the semiring laws of Definition 4.2
(including the ``0 · ∞ = 0`` convention) and the context-algebra laws used
by the bottom-up rules of Fig. 10.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.environment import Context
from repro.core.grades import DEFAULT_REGISTRY, EPS, Grade, INFINITY, ONE, ZERO, as_grade
from repro.core.types import NUM, UNIT
from repro.perf.reference import NaiveContext, naive_add_terms, naive_mul_terms

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_SYMBOLS = ("eps", "u'")

# The lattice operations (max/min, the sub-environment order) compare grades
# by exact evaluation, which needs every symbol to carry a value — give the
# second-roundoff symbol u' one (the paper's M[3*eps + 4*u'] example).
if not DEFAULT_REGISTRY.known("u'"):
    DEFAULT_REGISTRY.register("u'", Fraction(1, 2**24))

_coefficients = st.fractions(
    min_value=0, max_value=1000, max_denominator=64
)

_monomials = st.lists(st.sampled_from(_SYMBOLS), min_size=0, max_size=2).map(
    lambda symbols: tuple(sorted(symbols))
)


@st.composite
def finite_grades(draw):
    terms = draw(
        st.dictionaries(_monomials, _coefficients, min_size=0, max_size=3)
    )
    return Grade(terms)


@st.composite
def grades(draw):
    if draw(st.booleans()) and draw(st.integers(0, 9)) == 0:
        return INFINITY
    return draw(finite_grades())


_names = st.sampled_from(tuple(f"v{i}" for i in range(6)))
_types = st.sampled_from((NUM, UNIT))


@st.composite
def contexts(draw):
    bindings = draw(
        st.dictionaries(
            _names,
            st.tuples(_types, finite_grades()),
            min_size=0,
            max_size=5,
        )
    )
    return Context(bindings)


def summable_pair():
    """Two contexts whose shared variables carry identical types."""

    @st.composite
    def build(draw):
        skeleton = draw(st.dictionaries(_names, _types, min_size=0, max_size=5))

        def pick(names_subset):
            return Context(
                {name: (skeleton[name], draw(finite_grades())) for name in names_subset}
            )

        names = sorted(skeleton)
        left_names = draw(st.sets(st.sampled_from(names), max_size=5)) if names else set()
        right_names = draw(st.sets(st.sampled_from(names), max_size=5)) if names else set()
        return pick(left_names), pick(right_names)

    return build()


def naive_of(context: Context) -> NaiveContext:
    return NaiveContext(context.as_dict())


def same_bindings(context: Context, naive: NaiveContext) -> bool:
    return context.as_dict() == naive.as_dict()


# ---------------------------------------------------------------------------
# Grade: agreement with the naive reference
# ---------------------------------------------------------------------------


class TestGradeAgainstReference:
    @given(finite_grades(), finite_grades())
    def test_addition_matches_naive(self, a, b):
        assert (a + b).terms() == naive_add_terms(a.terms(), b.terms())

    @given(finite_grades(), finite_grades())
    def test_multiplication_matches_naive(self, a, b):
        assert (a * b).terms() == naive_mul_terms(a.terms(), b.terms())

    @given(finite_grades())
    def test_interning_canonicalizes(self, a):
        assert Grade(a.terms()) is a

    @given(finite_grades(), finite_grades())
    def test_equality_is_structural(self, a, b):
        assert (a == b) == (a.terms() == b.terms())


# ---------------------------------------------------------------------------
# Grade: semiring laws (Definition 4.2)
# ---------------------------------------------------------------------------


class TestGradeSemiringLaws:
    @given(grades(), grades())
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(grades(), grades(), grades())
    def test_addition_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(grades())
    def test_zero_is_additive_identity(self, a):
        assert a + ZERO == a
        assert ZERO + a == a

    @given(grades(), grades())
    def test_multiplication_commutes(self, a, b):
        assert a * b == b * a

    @given(grades(), grades(), grades())
    def test_multiplication_associates(self, a, b, c):
        assert (a * b) * c == a * (b * c)

    @given(grades())
    def test_one_is_multiplicative_identity(self, a):
        assert a * ONE == a

    @given(grades(), grades(), grades())
    def test_distributivity(self, a, b, c):
        # In the presence of ∞ distributivity needs the 0·∞ = 0 convention,
        # which both sides implement.
        assert a * (b + c) == a * b + a * c

    def test_zero_annihilates_infinity(self):
        assert ZERO * INFINITY == ZERO
        assert INFINITY * ZERO == ZERO

    @given(grades())
    def test_zero_annihilates(self, a):
        assert a * ZERO == ZERO

    @given(finite_grades(), finite_grades())
    def test_max_is_the_evaluation_order(self, a, b):
        bigger = a.max(b)
        assert bigger in (a, b)
        assert bigger >= a and bigger >= b


# ---------------------------------------------------------------------------
# Context: agreement with the naive reference
# ---------------------------------------------------------------------------


class TestContextAgainstReference:
    @given(summable_pair())
    def test_sum_matches_naive(self, pair):
        left, right = pair
        assert same_bindings(left + right, naive_of(left) + naive_of(right))

    @given(summable_pair())
    def test_max_matches_naive(self, pair):
        left, right = pair
        assert same_bindings(
            left.max_with(right), naive_of(left).max_with(naive_of(right))
        )

    @given(contexts(), grades())
    def test_scale_matches_naive(self, context, factor):
        assert same_bindings(context.scale(factor), naive_of(context).scale(factor))

    @given(contexts(), st.lists(_names, max_size=3))
    def test_remove_matches_naive(self, context, names):
        assert same_bindings(context.remove(*names), naive_of(context).remove(*names))


# ---------------------------------------------------------------------------
# Context: algebra laws used by the inference rules
# ---------------------------------------------------------------------------


class TestContextAlgebraLaws:
    @given(summable_pair())
    def test_sum_commutes(self, pair):
        left, right = pair
        assert left + right == right + left

    @given(summable_pair())
    def test_max_commutes(self, pair):
        left, right = pair
        assert left.max_with(right) == right.max_with(left)

    @given(contexts())
    def test_max_idempotent(self, context):
        assert context.max_with(context) == context

    @given(contexts())
    def test_empty_is_additive_identity(self, context):
        assert context + Context.empty() == context
        assert Context.empty() + context == context

    @given(summable_pair(), finite_grades())
    def test_scale_distributes_over_sum(self, pair, factor):
        left, right = pair
        assert (left + right).scale(factor) == left.scale(factor) + right.scale(factor)

    @given(contexts(), finite_grades(), finite_grades())
    def test_scale_composes(self, context, a, b):
        assert context.scale(a).scale(b) == context.scale(a * b)

    @given(contexts())
    def test_scale_by_one_is_identity(self, context):
        assert context.scale(ONE) == context

    @given(contexts())
    def test_scale_by_zero_zeroes_sensitivities(self, context):
        scaled = context.scale(ZERO)
        assert set(scaled.variables()) == set(context.variables())
        for name in scaled.variables():
            assert scaled.sensitivity_of(name) is ZERO

    @given(contexts())
    def test_scale_by_zero_kills_infinite_sensitivities(self, context):
        # 0 · ∞ = 0 lifts pointwise to contexts (Definition 4.2).
        spiked = context.bind("spike", NUM, INFINITY)
        assert spiked.scale(ZERO).sensitivity_of("spike") is ZERO

    @given(summable_pair())
    def test_sum_dominates_max(self, pair):
        left, right = pair
        joined = left.max_with(right)
        summed = left + right
        assert joined.is_subenvironment_of(summed)


# ---------------------------------------------------------------------------
# Mixed: persistence (no aliasing between derived contexts)
# ---------------------------------------------------------------------------


class TestPersistence:
    @given(summable_pair())
    def test_operands_survive_merge(self, pair):
        left, right = pair
        before_left = left.as_dict()
        before_right = right.as_dict()
        _ = left + right
        _ = left.max_with(right)
        _ = left.scale(EPS)
        assert left.as_dict() == before_left
        assert right.as_dict() == before_right

    @given(contexts())
    def test_pickle_round_trip(self, context):
        import pickle

        clone = pickle.loads(pickle.dumps(context))
        assert clone == context
        assert clone.as_dict() == context.as_dict()


@pytest.mark.parametrize("value", [0, 1, Fraction(3, 7), "2*eps + 1"])
def test_as_grade_canonicalizes(value):
    assert as_grade(value) is as_grade(value)
