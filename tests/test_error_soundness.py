"""Empirical checks of error soundness (Corollary 4.20).

For programs of type ``M_u num`` the ideal and floating-point results must be
within RP distance ``u``.  These tests run both semantics on concrete and
randomised inputs and verify the bound with exact rational enclosures of the
logarithm — never with lossy double-precision arithmetic.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import check_error_soundness
from repro.core import types as T
from repro.core.parser import parse_term
from repro.floats.rounding import RoundingMode
from repro.frontend.compiler import compile_expression
from repro.benchsuite.fpbench import table3_benchmarks
from repro.benchsuite.large import horner_fma_expression, serial_sum_expression

positive_inputs = st.fractions(min_value=Fraction(1, 1000), max_value=Fraction(1000)).filter(
    lambda q: q > 0
)


class TestSimplePrograms:
    def test_single_rounding(self):
        report = check_error_soundness(
            parse_term("rnd x"), {"x": T.NUM}, {"x": Fraction(1, 10)}
        )
        assert report.holds
        assert report.rp_upper <= report.bound

    def test_exact_value_has_zero_error(self):
        report = check_error_soundness(
            parse_term("rnd x"), {"x": T.NUM}, {"x": Fraction(1, 2)}
        )
        assert report.holds
        assert report.rp_upper == 0

    def test_pow4_composition(self):
        source = "a = mul (x, x); let t = rnd a; b = mul (t, t); rnd b"
        report = check_error_soundness(
            parse_term(source), {"x": T.NUM}, {"x": Fraction(3, 7)}
        )
        assert report.holds
        assert report.bound == 3 * Fraction(1, 2**52)

    def test_division_heavy_program(self):
        source = "a = div (x, y); let t = rnd a; b = div (t, x); rnd b"
        report = check_error_soundness(
            parse_term(source), {"x": T.NUM, "y": T.NUM},
            {"x": Fraction(7, 10), "y": Fraction(13, 9)},
        )
        assert report.holds

    def test_sqrt_program_with_slack(self):
        source = "a = add (|x, 1|); let t = rnd a; s = sqrt t; rnd s"
        report = check_error_soundness(
            parse_term(source), {"x": T.NUM}, {"x": Fraction(1, 3)}
        )
        assert report.holds

    def test_other_rounding_modes(self):
        for mode in (RoundingMode.TOWARD_NEGATIVE, RoundingMode.NEAREST_EVEN, RoundingMode.TOWARD_ZERO):
            report = check_error_soundness(
                parse_term("s = mul (x, x); rnd s"),
                {"x": T.NUM},
                {"x": Fraction(1, 10)},
                rounding=mode,
            )
            assert report.holds, mode

    def test_lower_precision_still_sound(self):
        # The grade eps is registered for binary64; analysing with eps but
        # evaluating at binary32 must violate the bound, while evaluating at
        # binary64 satisfies it -- this checks the test harness can see both sides.
        term = parse_term("s = mul (x, y); rnd s")
        skeleton = {"x": T.NUM, "y": T.NUM}
        inputs = {"x": Fraction(1, 3), "y": Fraction(1, 7)}
        sound = check_error_soundness(term, skeleton, inputs, precision=53)
        unsound = check_error_soundness(term, skeleton, inputs, precision=24)
        assert sound.holds
        assert not unsound.holds


class TestPropertyBased:
    @given(x=positive_inputs)
    @settings(max_examples=30, deadline=None)
    def test_fma_bound_holds_for_random_inputs(self, x):
        term = parse_term("a = mul (x, x); b = add (|a, 1|); rnd b")
        report = check_error_soundness(term, {"x": T.NUM}, {"x": x})
        assert report.holds

    @given(x=positive_inputs, y=positive_inputs)
    @settings(max_examples=30, deadline=None)
    def test_division_bound_holds_for_random_inputs(self, x, y):
        term = parse_term("a = add (|x, y|); let t = rnd a; b = div (x, t); rnd b")
        report = check_error_soundness(term, {"x": T.NUM, "y": T.NUM}, {"x": x, "y": y})
        assert report.holds

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_horner_bound_holds_for_random_inputs(self, data):
        degree = data.draw(st.integers(min_value=1, max_value=6))
        expression = horner_fma_expression(degree)
        compiled = compile_expression(expression)
        inputs = {
            name: data.draw(positive_inputs) for name in compiled.skeleton
        }
        report = check_error_soundness(compiled.term, compiled.skeleton, inputs)
        assert report.holds

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_serial_sum_bound_holds(self, data):
        terms = data.draw(st.integers(min_value=2, max_value=10))
        expression = serial_sum_expression(terms)
        compiled = compile_expression(expression)
        inputs = {name: data.draw(positive_inputs) for name in compiled.skeleton}
        report = check_error_soundness(compiled.term, compiled.skeleton, inputs)
        assert report.holds


class TestBenchmarksAreSound:
    @pytest.mark.parametrize(
        "bench",
        [b for b in table3_benchmarks() if b.expression is not None and b.name != "Horner2_with_error"],
        ids=lambda b: b.name,
    )
    def test_table3_bound_holds_on_sample_inputs(self, bench):
        inputs = bench.sample_inputs(seed=7)
        report = check_error_soundness(bench.term, bench.skeleton, inputs)
        assert report.holds, bench.name

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_hypot_multiple_samples(self, seed):
        from repro.benchsuite.fpbench import small_benchmark

        benchmark = small_benchmark("hypot")
        inputs = benchmark.sample_inputs(seed=seed)
        report = check_error_soundness(benchmark.term, benchmark.skeleton, inputs)
        assert report.holds
