"""Tests for the high-level analysis API and the RP ↔ relative-error conversions."""

from fractions import Fraction

import pytest

from repro.analysis import (
    analyze_program,
    analyze_source,
    analyze_term,
    relative_error_from_rp,
    relative_error_from_rp_linear,
    rp_bound_value,
    rp_from_relative_error,
)
from repro.core import parse_program, parse_term
from repro.core import types as T
from repro.core.errors import TypeInferenceError
from repro.core.grades import EPS


SOURCE = """
function mulfp (xy: (num, num)) : M[eps]num { s = mul xy; rnd s }
function square (x: ![2]num) : M[eps]num {
  let [x1] = x;
  mulfp (x1, x1)
}
"""


class TestBoundsConversions:
    def test_rp_bound_value(self):
        assert rp_bound_value(2 * EPS) == Fraction(1, 2**51)

    def test_zero(self):
        assert relative_error_from_rp(0) == 0
        assert rp_from_relative_error(0) == 0

    def test_relative_error_dominates_alpha(self):
        alpha = 5 * EPS
        assert relative_error_from_rp(alpha) >= rp_bound_value(alpha)

    def test_linear_form_is_looser(self):
        alpha = 5 * EPS
        assert relative_error_from_rp(alpha) <= relative_error_from_rp_linear(alpha)

    def test_linear_form_requires_alpha_below_one(self):
        with pytest.raises(ValueError):
            relative_error_from_rp_linear(2)

    def test_round_trip_is_conservative(self):
        epsilon = Fraction(1, 10**8)
        alpha = rp_from_relative_error(epsilon)
        assert relative_error_from_rp(alpha) >= epsilon

    def test_negative_rp_rejected(self):
        with pytest.raises(Exception):
            relative_error_from_rp(Fraction(-1))


class TestAnalyzeTerm:
    def test_monadic_result(self):
        report = analyze_term(parse_term("rnd x"), {"x": T.NUM})
        assert report.error_grade == EPS
        assert report.rp_bound == Fraction(1, 2**52)
        assert report.relative_error_bound >= report.rp_bound
        assert report.operations == 0

    def test_non_monadic_result_has_no_bound(self):
        report = analyze_term(parse_term("mul (x, y)"), {"x": T.NUM, "y": T.NUM})
        assert report.error_grade is None
        assert report.rp_bound is None

    def test_sensitivities_are_reported(self):
        report = analyze_term(parse_term("s = mul (x, x); rnd s"), {"x": T.NUM})
        assert report.sensitivity_of("x") == 2

    def test_summary_is_readable(self):
        report = analyze_term(parse_term("rnd x"), {"x": T.NUM}, name="single")
        text = report.summary()
        assert "single" in text and "RP error grade" in text and "eps" in text


class TestAnalyzeSource:
    def test_function_selection(self):
        report = analyze_source(SOURCE, function="mulfp")
        assert report.name == "mulfp"
        assert report.error_grade == EPS

    def test_last_function_is_default(self):
        report = analyze_source(SOURCE)
        assert report.name == "square"
        assert report.annotation_satisfied

    def test_annotation_violations_are_flagged(self):
        bad = """
        function f (x: num) : M[0]num {
          rnd x
        }
        """
        report = analyze_source(bad)
        assert report.annotation_satisfied is False

    def test_analyze_program_covers_every_definition(self):
        program = parse_program(SOURCE)
        reports = analyze_program(program)
        assert [report.name for report in reports] == ["mulfp", "square"]
        assert all(report.error_grade == EPS for report in reports)

    def test_bare_expression_program(self):
        report = analyze_source("s = add (|2, 3|); rnd s")
        assert report.error_grade == EPS


class TestSoundnessHarness:
    def test_rejects_non_monadic_terms(self):
        from repro.analysis import check_error_soundness

        with pytest.raises(TypeInferenceError):
            check_error_soundness(parse_term("mul (x, y)"), {"x": T.NUM, "y": T.NUM}, {"x": 1, "y": 1})

    def test_report_fields(self):
        from repro.analysis import check_error_soundness

        report = check_error_soundness(parse_term("rnd x"), {"x": T.NUM}, {"x": Fraction(1, 3)})
        assert report.holds and bool(report)
        assert report.fp_value >= report.ideal_value
        assert report.rp_lower <= report.rp_upper <= report.bound + report.slack
