"""Tests for grade-guided mixed-precision tuning (``repro tune``).

Covers the search layers bottom-up: the format ladder and assignment
algebra, the unsharing rebuild that names ``rnd`` occurrences, per-site
grade inference, candidate certification (including re-verifying a
returned winner at a *different* seed — the soundness claim the tuner
makes), search determinism, cache-key stability, the CLI exit codes, and
the ``tune`` op of the analysis service.
"""

import json
import os
from fractions import Fraction

import pytest

from repro.analysis.batch import BatchItem
from repro.analysis.cache import AnalysisCache, config_key
from repro.core import ast as A
from repro.core.errors import TypeInferenceError
from repro.core.grades import Grade
from repro.core.inference import InferenceConfig, enumerate_rnd_sites, infer
from repro.core.parser import parse_program
from repro.tuning import (
    FORMAT_COSTS,
    LADDER,
    PrecisionAssignment,
    TuningOptions,
    PrecisionTuner,
    candidate_key,
    certify_candidate,
    parse_fraction,
    tune_item,
    tuning_key,
    unshare_term,
)
from repro.validation.harness import subjects_from_item

EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples", "programs"
)

FMA_SOURCE = open(os.path.join(EXAMPLES, "fma.lnum")).read()
PYTH_SOURCE = open(os.path.join(EXAMPLES, "pythagorean_sum.lnum")).read()

#: Small sampling settings keep every certification in milliseconds.
FAST = TuningOptions(points=2, samples=4)


def subject_named(source, name=None, kind="lnum"):
    item = BatchItem(name="<test>", kind=kind, source=source)
    subjects = subjects_from_item(item)
    if name is None:
        return subjects[-1]
    for subject in subjects:
        if subject.name.endswith(f"::{name}"):
            return subject
    raise AssertionError(f"no subject {name!r}")


# ---------------------------------------------------------------------------
# Assignments and the unshare rebuild
# ---------------------------------------------------------------------------


class TestAssignment:
    def test_ladder_is_cost_ordered(self):
        costs = [FORMAT_COSTS[name] for name in LADDER]
        assert costs == sorted(costs)
        assert LADDER[-1] == "binary64"

    def test_cost_and_reduction(self):
        uniform = PrecisionAssignment.uniform("binary64", 4)
        assert uniform.cost == 32 and uniform.cost_reduction == 0.0
        mixed = uniform.with_format(0, "binary16").with_format(1, "bfloat16")
        assert mixed.cost == 2 + 1 + 8 + 8
        assert not mixed.is_uniform
        assert mixed.cost_reduction == pytest.approx(1 - 19 / 32)

    def test_narrowed_steps_down_the_ladder(self):
        assignment = PrecisionAssignment.uniform("binary32", 2)
        narrower = assignment.narrowed(1)
        assert narrower.formats == ("binary32", "binary16")
        floor = PrecisionAssignment.uniform("bfloat16", 1)
        assert floor.narrowed(0) is None

    def test_key_part_distinguishes_stochastic(self):
        plain = PrecisionAssignment.uniform("binary16", 2)
        noisy = PrecisionAssignment(formats=plain.formats, stochastic=True)
        assert plain.key_part() != noisy.key_part()

    def test_unshare_gives_unique_rnd_identities(self):
        subject = subject_named(PYTH_SOURCE, "PythagoreanSum")
        unshared = unshare_term(subject.term)
        sites = enumerate_rnd_sites(unshared, subject.skeleton)
        assert len(sites) == 5
        assert len({id(site) for site in sites}) == len(sites)
        # The rebuild must not change what the term means to inference.
        original = infer(subject.term, skeleton=subject.skeleton)
        rebuilt = infer(unshared, skeleton=subject.skeleton)
        assert str(original.type) == str(rebuilt.type)


# ---------------------------------------------------------------------------
# Per-site grade inference
# ---------------------------------------------------------------------------


class TestSiteGrades:
    def test_site_grades_override_the_uniform_grade(self):
        subject = subject_named(FMA_SOURCE)
        sites = enumerate_rnd_sites(subject.term, subject.skeleton)
        assert len(sites) == 1
        config = InferenceConfig().with_rnd_site_grades(
            (Grade.constant(Fraction(1, 8)),)
        )
        judgement = infer(subject.term, skeleton=subject.skeleton, config=config)
        assert "1/8" in str(judgement.type)

    def test_site_count_mismatch_is_an_error(self):
        subject = subject_named(FMA_SOURCE)
        config = InferenceConfig().with_rnd_site_grades(
            (Grade.constant(Fraction(1, 8)), Grade.constant(Fraction(1, 8)))
        )
        with pytest.raises(TypeInferenceError):
            infer(subject.term, skeleton=subject.skeleton, config=config)

    def test_compiled_engine_rejects_site_grades(self):
        from repro.core.compiled import infer_compiled

        subject = subject_named(FMA_SOURCE)
        config = InferenceConfig().with_rnd_site_grades(
            (Grade.constant(Fraction(1, 8)),)
        )
        with pytest.raises(ValueError):
            infer_compiled(subject.term, skeleton=subject.skeleton, config=config)


# ---------------------------------------------------------------------------
# Certification
# ---------------------------------------------------------------------------


class TestCertification:
    def test_uniform_binary64_certifies_sound(self):
        subject = subject_named(FMA_SOURCE)
        assignment = PrecisionAssignment.uniform("binary64", 1)
        cert = certify_candidate(
            subject,
            assignment.formats,
            False,
            None,
            {"points": 2, "samples": 4, "seed": 0},
            "test-key",
        )
        assert cert.sound and cert.empirical_ok
        assert cert.rp_bound is not None and cert.max_rp <= cert.rp_bound + cert.slack

    def test_winner_re_certifies_at_a_different_seed(self):
        # The tuner's claim is per-configuration, not per-sample: a winning
        # assignment must stay certified when the empirical evidence is
        # drawn from a different seed.
        subject = subject_named(PYTH_SOURCE, "PythagoreanSum")
        with PrecisionTuner(options=FAST) as tuner:
            outcome = tuner.tune_subject(subject)
        assert outcome.status == "tuned"
        assert outcome.assignment is not None
        recheck = certify_candidate(
            subject,
            outcome.assignment.formats,
            outcome.assignment.stochastic,
            None,
            {"points": 3, "samples": 6, "seed": 12345},
            "recheck-key",
        )
        assert recheck.sound
        assert recheck.rp_bound == outcome.certified_rp
        assert outcome.target is not None
        assert recheck.rp_bound <= outcome.target


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_same_seed_same_result(self):
        subject = subject_named(PYTH_SOURCE, "PythagoreanSum")
        outcomes = []
        for _ in range(2):
            with PrecisionTuner(options=FAST) as tuner:
                outcomes.append(tuner.tune_subject(subject))
        first, second = outcomes
        assert first.assignment.formats == second.assignment.formats
        assert first.certified_rp == second.certified_rp
        assert first.candidates == second.candidates

    def test_result_is_independent_of_jobs(self):
        subject = subject_named(PYTH_SOURCE, "scaled")
        with PrecisionTuner(jobs=1, options=FAST) as tuner:
            serial = tuner.tune_subject(subject)
        with PrecisionTuner(jobs=2, options=FAST) as tuner:
            fanned = tuner.tune_subject(subject)
        assert serial.assignment.formats == fanned.assignment.formats
        assert serial.certified_rp == fanned.certified_rp

    def test_different_seed_may_change_evidence_not_bound(self):
        # The certified bound is inference-side; seeds only move the
        # empirical evidence underneath it.
        subject = subject_named(FMA_SOURCE)
        with PrecisionTuner(options=FAST) as tuner:
            base = tuner.tune_subject(subject)
        with PrecisionTuner(
            options=TuningOptions(points=2, samples=4, seed=7)
        ) as tuner:
            moved = tuner.tune_subject(subject)
        assert base.assignment.formats == moved.assignment.formats
        assert base.certified_rp == moved.certified_rp


# ---------------------------------------------------------------------------
# Cache keys
# ---------------------------------------------------------------------------


class TestCacheKeys:
    def test_tuning_key_is_stable(self):
        subject = subject_named(FMA_SOURCE)
        assert tuning_key(subject, None, FAST) == tuning_key(subject, None, FAST)

    def test_tuning_key_tracks_every_option(self):
        subject = subject_named(FMA_SOURCE)
        base = tuning_key(subject, None, FAST)
        variants = [
            TuningOptions(points=2, samples=4, seed=1),
            TuningOptions(points=2, samples=4, budget=12),
            TuningOptions(points=2, samples=4, stochastic=True),
            TuningOptions(points=2, samples=4, target=Fraction(1, 1000)),
            TuningOptions(points=2, samples=4, target_ratio=Fraction(2**20)),
            TuningOptions(points=3, samples=4),
            TuningOptions(points=2, samples=8),
        ]
        keys = {tuning_key(subject, None, options) for options in variants}
        assert base not in keys
        assert len(keys) == len(variants)

    def test_candidate_key_tracks_the_assignment(self):
        subject = subject_named(PYTH_SOURCE, "PythagoreanSum")
        uniform = PrecisionAssignment.uniform("binary16", 5)
        mixed = uniform.with_format(2, "binary32")
        assert candidate_key(subject, None, uniform, FAST) != candidate_key(
            subject, None, mixed, FAST
        )

    def test_config_key_includes_site_grades(self):
        plain = InferenceConfig()
        sited = plain.with_rnd_site_grades((Grade.constant(Fraction(1, 256)),))
        assert config_key(plain) != config_key(sited)

    def test_subject_cache_round_trip(self, tmp_path):
        subject = subject_named(FMA_SOURCE)
        cache = AnalysisCache(directory=str(tmp_path))
        with PrecisionTuner(cache=cache, options=FAST) as tuner:
            first = tuner.tune_subject(subject)
        with PrecisionTuner(cache=cache, options=FAST) as tuner:
            second = tuner.tune_subject(subject)
        assert not first.from_cache and second.from_cache
        assert second.assignment.formats == first.assignment.formats

    def test_parse_fraction_accepts_rationals_and_decimals(self):
        assert parse_fraction("1/1024") == Fraction(1, 1024)
        assert parse_fraction("0.25") == Fraction(1, 4)
        assert parse_fraction("1e-3") == Fraction(1, 1000)


# ---------------------------------------------------------------------------
# The work unit and the CLI
# ---------------------------------------------------------------------------


class TestTuneItem:
    def test_tune_item_ok(self):
        item = BatchItem(name="fma", kind="lnum", source=FMA_SOURCE)
        report = tune_item(item, options={"points": 2, "samples": 4})
        assert report.ok and report.verdict == "ok"
        assert report.reports[0].status == "tuned"
        assert report.reports[0].cost < report.reports[0].assignment.baseline_cost

    def test_tune_item_parse_error(self):
        item = BatchItem(name="bad", kind="lnum", source="function oops {")
        report = tune_item(item)
        assert not report.ok and report.verdict == "error"

    def test_unreachable_target_is_infeasible(self):
        item = BatchItem(name="fma", kind="lnum", source=FMA_SOURCE)
        report = tune_item(
            item,
            options={"points": 2, "samples": 4, "target": f"1/{2 ** 200}"},
        )
        assert report.verdict == "infeasible"


class TestTuneCLI:
    def run_cli(self, argv):
        from repro.cli import main

        return main(argv)

    def test_requires_paths_or_suite(self):
        with pytest.raises(SystemExit):
            self.run_cli(["tune"])

    def test_tune_examples_ok(self, capsys, tmp_path):
        path = os.path.join(EXAMPLES, "fma.lnum")
        code = self.run_cli(
            [
                "tune", path,
                "--points", "2", "--samples", "4",
                "--cache-dir", str(tmp_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "tuned" in output and "cost" in output

    def test_unreachable_target_exits_1(self, capsys):
        path = os.path.join(EXAMPLES, "fma.lnum")
        code = self.run_cli(
            [
                "tune", path,
                "--points", "2", "--samples", "4", "--no-cache",
                "--target", f"1/{2 ** 200}",
            ]
        )
        assert code == 1
        assert "infeasible" in capsys.readouterr().out

    def test_bad_program_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.lnum"
        bad.write_text("function oops {")
        code = self.run_cli(["tune", str(bad), "--no-cache"])
        assert code == 2

    def test_report_and_baseline_gate(self, capsys, tmp_path):
        path = os.path.join(EXAMPLES, "fma.lnum")
        out = tmp_path / "BENCH_tuning.json"
        code = self.run_cli(
            [
                "tune", path,
                "--points", "2", "--samples", "4",
                "--cache-dir", str(tmp_path / "cache"),
                "--out", str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["aggregate"]["tuned"] == 1
        assert report["programs"][0]["cost_reduction"] > 0
        # A run gated against its own report passes.
        code = self.run_cli(
            [
                "tune", path,
                "--points", "2", "--samples", "4",
                "--cache-dir", str(tmp_path / "cache"),
                "--baseline", str(out),
            ]
        )
        assert code == 0
        assert "tuning gate passed" in capsys.readouterr().out

    def test_json_output(self, capsys, tmp_path):
        path = os.path.join(EXAMPLES, "fma.lnum")
        code = self.run_cli(
            [
                "tune", path, "--json",
                "--points", "2", "--samples", "4",
                "--cache-dir", str(tmp_path),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tuned"] == 1
        assert payload["reports"][0]["assignment"]["formats"] == ["binary16"]


# ---------------------------------------------------------------------------
# The service surface
# ---------------------------------------------------------------------------


@pytest.fixture()
def live_server():
    from repro.perf.service_bench import _ServerHarness
    from repro.service import ServiceConfig

    with _ServerHarness(ServiceConfig(jobs=1)) as harness:
        yield harness.port


class TestServeTune:
    def test_client_tune_round_trip(self, live_server):
        from repro.service import ServiceClient

        with ServiceClient(port=live_server) as client:
            response = client.tune(FMA_SOURCE, name="fma", samples=4, points=2)
            assert response["status"] == "ok"
            report = response["report"]
            assert report["verdict"] == "ok"
            assert report["reports"][0]["status"] == "tuned"
            repeat = client.tune(FMA_SOURCE, name="fma", samples=4, points=2)
            assert repeat["cached"]
            stats = client.stats()
            assert stats["service"]["tune_requests"] == 2
            assert stats["tuning"]["subjects"] >= 1

    def test_bad_tune_params_rejected(self, live_server):
        from repro.service import ServiceClient, ServiceError

        with ServiceClient(port=live_server) as client:
            with pytest.raises(ServiceError):
                client.tune(FMA_SOURCE, target="not-a-number")
            with pytest.raises(ServiceError):
                client.tune(FMA_SOURCE, budget=0)

    def test_query_cli_tune_flag(self, live_server, capsys):
        from repro.cli import main

        path = os.path.join(EXAMPLES, "fma.lnum")
        code = main(
            [
                "query", path, "--tune",
                "--samples", "4", "--points", "2",
                "--port", str(live_server),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "tuned" in output and "assignment" in output

    def test_query_rejects_validate_plus_tune(self, live_server):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["query", "x.lnum", "--validate", "--tune"])
