"""Regression tests for analysis cache keys (stability + intern fast path).

Cache keys must be pure functions of *content* — never of process-local
state such as intern ids or ``PYTHONHASHSEED`` — because the disk tier of
:class:`repro.analysis.cache.AnalysisCache` is shared across processes.  The
hard-coded digests below pin the key derivation: if either test starts
failing, the on-disk format changed and :data:`CACHE_SCHEMA` must be bumped
alongside (see the schema history note in ``repro/analysis/cache.py``).
"""

import subprocess
import sys

from repro.analysis.cache import CACHE_SCHEMA, term_key
from repro.core import ast as A
from repro.core.ast import intern_term, is_interned, term_fingerprint


def _sample_term() -> A.Term:
    return A.Let(
        "s",
        A.Op("add", A.WithPair(A.Var("x"), A.Const("1/3"))),
        A.Rnd(A.Var("s")),
    )


#: Pinned digests (computed once; stable across processes and platforms).
EXPECTED_FINGERPRINT = "a77fbeea12c835de54d4980f831ade0f541dbbcb2e95246810a9f36ecc43b177"
EXPECTED_TERM_KEY = "87bd9c72e84379d48237ae523fdbc88d3e860e7b04d021fd2589a72e921473fe"


class TestFingerprintStability:
    def test_fingerprint_is_pinned(self):
        assert term_fingerprint(_sample_term()) == EXPECTED_FINGERPRINT

    def test_term_key_is_pinned(self):
        assert CACHE_SCHEMA == 2  # the pinned key embeds the schema version
        assert term_key(_sample_term(), None) == EXPECTED_TERM_KEY

    def test_interned_and_plain_terms_agree(self):
        # The intern-id memo is a fast path, not a different key space.
        plain = _sample_term()
        interned = intern_term(_sample_term())
        assert is_interned(interned) and not is_interned(plain)
        assert term_fingerprint(interned) == term_fingerprint(plain)
        assert term_key(interned, None) == term_key(plain, None)

    def test_memo_hit_returns_same_digest(self):
        interned = intern_term(_sample_term())
        first = term_fingerprint(interned)
        assert term_fingerprint(interned) == first  # served from the memo

    def test_stable_across_processes(self):
        # A fresh interpreter (fresh hash seed, fresh intern ids) must
        # derive the identical key.
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from repro.analysis.cache import term_key\n"
            "from repro.core import ast as A\n"
            "from repro.core.ast import intern_term\n"
            "term = intern_term(A.Let('s', A.Op('add', A.WithPair(A.Var('x'), "
            "A.Const('1/3'))), A.Rnd(A.Var('s'))))\n"
            "print(term_key(term, None))\n"
        )
        import os

        source_root = os.path.join(os.path.dirname(__file__), "..", "src")
        output = subprocess.run(
            [sys.executable, "-c", script, source_root],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONHASHSEED": "random"},
        ).stdout.strip()
        assert output == EXPECTED_TERM_KEY


class TestFingerprintDiscrimination:
    def test_different_structure_different_key(self):
        left = _sample_term()
        right = A.Let(
            "s",
            A.Op("mul", A.TensorPair(A.Var("x"), A.Const("1/3"))),
            A.Rnd(A.Var("s")),
        )
        assert term_fingerprint(left) != term_fingerprint(right)
        assert term_key(left, None) != term_key(right, None)

    def test_scalar_fields_participate(self):
        from fractions import Fraction

        one_third = A.Box(A.Var("x"), Fraction(1, 3))
        one_half = A.Box(A.Var("x"), Fraction(1, 2))
        assert term_fingerprint(one_third) != term_fingerprint(one_half)
