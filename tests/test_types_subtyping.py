"""Tests for the type syntax, subtyping (Fig. 12) and the max/min lattice (Fig. 11)."""

import pytest

from repro.core.grades import EPS, INFINITY
from repro.core.errors import TypeJoinError
from repro.core.subtyping import is_subtype, join, meet, check_subtype
from repro.core.types import (
    Arrow,
    Bang,
    Monadic,
    NUM,
    SumType,
    TensorProduct,
    UNIT,
    WithProduct,
    bool_type,
    is_boolean,
)


class TestTypeEquality:
    def test_base_types(self):
        assert NUM == NUM
        assert UNIT == UNIT
        assert NUM != UNIT

    def test_structural_equality(self):
        assert TensorProduct(NUM, NUM) == TensorProduct(NUM, NUM)
        assert WithProduct(NUM, NUM) != TensorProduct(NUM, NUM)

    def test_graded_equality_uses_grade(self):
        assert Monadic(EPS, NUM) == Monadic(EPS, NUM)
        assert Monadic(EPS, NUM) != Monadic(2 * EPS, NUM)
        assert Bang(2, NUM) == Bang(2, NUM)
        assert Bang(2, NUM) != Bang(3, NUM)

    def test_types_are_hashable(self):
        assert len({NUM, NUM, Monadic(EPS, NUM), Monadic(EPS, NUM)}) == 2

    def test_bool_encoding(self):
        assert bool_type() == SumType(UNIT, UNIT)
        assert is_boolean(bool_type())
        assert not is_boolean(SumType(NUM, UNIT))

    def test_rendering(self):
        assert str(Monadic(2 * EPS, NUM)) == "M[2*eps]num"
        assert str(Bang(2, NUM)) == "![2]num"
        assert str(Arrow(NUM, NUM)) == "(num -o num)"


class TestSubtyping:
    def test_reflexive_on_bases(self):
        assert is_subtype(NUM, NUM)
        assert is_subtype(UNIT, UNIT)
        assert not is_subtype(NUM, UNIT)

    def test_monadic_grade_covariant(self):
        assert is_subtype(Monadic(EPS, NUM), Monadic(2 * EPS, NUM))
        assert not is_subtype(Monadic(2 * EPS, NUM), Monadic(EPS, NUM))

    def test_monadic_infinite_grade_is_top(self):
        assert is_subtype(Monadic(EPS, NUM), Monadic(INFINITY, NUM))

    def test_bang_grade_contravariant(self):
        # !_{s'} σ ⊑ !_s σ' requires s <= s' (a 3-sensitive promise can be used
        # where only 2-sensitivity is required).
        assert is_subtype(Bang(3, NUM), Bang(2, NUM))
        assert not is_subtype(Bang(2, NUM), Bang(3, NUM))

    def test_arrow_contravariant_argument(self):
        sub = Arrow(Bang(2, NUM), Monadic(EPS, NUM))
        sup = Arrow(Bang(3, NUM), Monadic(2 * EPS, NUM))
        assert is_subtype(sub, sup)
        assert not is_subtype(sup, sub)

    def test_products_covariant(self):
        assert is_subtype(
            TensorProduct(Monadic(EPS, NUM), NUM),
            TensorProduct(Monadic(2 * EPS, NUM), NUM),
        )
        assert is_subtype(
            WithProduct(Monadic(EPS, NUM), NUM),
            WithProduct(Monadic(2 * EPS, NUM), NUM),
        )

    def test_sum_covariant(self):
        assert is_subtype(
            SumType(Monadic(EPS, NUM), UNIT), SumType(Monadic(2 * EPS, NUM), UNIT)
        )

    def test_mismatched_shapes(self):
        assert not is_subtype(TensorProduct(NUM, NUM), WithProduct(NUM, NUM))
        assert not is_subtype(Arrow(NUM, NUM), NUM)

    def test_check_subtype_raises(self):
        with pytest.raises(TypeJoinError):
            check_subtype(Monadic(2 * EPS, NUM), Monadic(EPS, NUM))


class TestJoinMeet:
    def test_join_monadic_takes_max_grade(self):
        assert join(Monadic(EPS, NUM), Monadic(2 * EPS, NUM)) == Monadic(2 * EPS, NUM)

    def test_meet_monadic_takes_min_grade(self):
        assert meet(Monadic(EPS, NUM), Monadic(2 * EPS, NUM)) == Monadic(EPS, NUM)

    def test_join_bang_takes_min_sensitivity(self):
        assert join(Bang(2, NUM), Bang(3, NUM)) == Bang(2, NUM)

    def test_meet_bang_takes_max_sensitivity(self):
        assert meet(Bang(2, NUM), Bang(3, NUM)) == Bang(3, NUM)

    def test_join_arrow_flips_argument(self):
        left = Arrow(Bang(2, NUM), Monadic(EPS, NUM))
        right = Arrow(Bang(3, NUM), Monadic(2 * EPS, NUM))
        assert join(left, right) == Arrow(Bang(3, NUM), Monadic(2 * EPS, NUM))
        assert meet(left, right) == Arrow(Bang(2, NUM), Monadic(EPS, NUM))

    def test_join_is_an_upper_bound(self):
        left = Monadic(EPS, TensorProduct(NUM, NUM))
        right = Monadic(3 * EPS, TensorProduct(NUM, NUM))
        upper = join(left, right)
        assert is_subtype(left, upper) and is_subtype(right, upper)

    def test_meet_is_a_lower_bound(self):
        left = Monadic(EPS, NUM)
        right = Monadic(3 * EPS, NUM)
        lower = meet(left, right)
        assert is_subtype(lower, left) and is_subtype(lower, right)

    def test_join_incompatible_raises(self):
        with pytest.raises(TypeJoinError):
            join(NUM, UNIT)
        with pytest.raises(TypeJoinError):
            meet(TensorProduct(NUM, NUM), NUM)
