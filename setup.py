"""Setup shim for environments without the `wheel` package.

The project metadata lives in pyproject.toml / setup.cfg; this file only
enables the legacy `pip install -e .` code path.
"""
from setuptools import setup

setup()
