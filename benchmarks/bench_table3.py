"""Table 3: small benchmarks — Λnum type inference versus the baseline tools.

Every benchmark function times one tool on one program and asserts that the
computed bound matches the value recorded in the paper (for Λnum) or stays in
the expected regime (for the baselines).  The timing columns of Table 3 are
the ``lnum``/``fptaylor``/``gappa`` groups of the pytest-benchmark report.

Run with::

    pytest benchmarks/bench_table3.py --benchmark-only
"""

from fractions import Fraction

import pytest

from repro.benchsuite.fpbench import table3_benchmarks

EPS64 = Fraction(1, 2**52)

#: Paper Table 3, Λnum column, expressed as exact multiples of eps.
EXPECTED_GRADE_IN_EPS = {
    "hypot": Fraction(5, 2),
    "x_by_xy": 2,
    "one_by_sqrtxx": Fraction(5, 2),
    "sqrt_add": Fraction(9, 2),
    "test02_sum8": 7,
    "nonlin1": 2,
    "test05_nonlin1": 2,
    "verhulst": 4,
    "predatorPrey": 7,
    "test06_sums4_sum1": 3,
    "test06_sums4_sum2": 3,
    "i4": 2,
    "Horner2": 2,
    "Horner2_with_error": 7,
    "Horner5": 5,
    "Horner10": 10,
    "Horner20": 20,
}

_BENCHMARKS = table3_benchmarks()
_BY_NAME = {bench.name: bench for bench in _BENCHMARKS}


@pytest.mark.parametrize("name", list(_BY_NAME), ids=list(_BY_NAME))
def test_lnum_inference(benchmark, name):
    """The paper's Λnum timing column: sensitivity inference per benchmark."""
    bench = _BY_NAME[name]
    analysis = benchmark(bench.analyze_lnum)
    assert analysis.rp_bound == EXPECTED_GRADE_IN_EPS[name] * EPS64


_BASELINE_NAMES = [name for name, bench in _BY_NAME.items() if bench.expression is not None]


@pytest.mark.parametrize("name", _BASELINE_NAMES, ids=_BASELINE_NAMES)
def test_gappa_like_baseline(benchmark, name):
    """The Gappa-style interval baseline on the same programs."""
    bench = _BY_NAME[name]
    result = benchmark(bench.analyze_gappa_like)
    assert not result.failed
    # The interval baseline is at most a small factor away from Λnum (Table 3
    # reports ratios between 1 and 2 in the other direction).  The tolerance
    # absorbs the second-order (1+u)^k terms of the interval propagation.
    lnum = EXPECTED_GRADE_IN_EPS[name] * EPS64
    assert result.relative_error <= lnum * (1 + Fraction(1, 10**9))
    assert result.relative_error >= lnum / 4


@pytest.mark.parametrize("name", _BASELINE_NAMES, ids=_BASELINE_NAMES)
def test_fptaylor_like_baseline(benchmark, name):
    """The FPTaylor-style Taylor-form baseline on the same programs."""
    bench = _BY_NAME[name]
    result = benchmark(bench.analyze_fptaylor_like)
    # The Taylor baseline either fails (as FPTaylor does on x_by_xy) or
    # produces a bound; on wide input boxes it is far looser than Λnum,
    # reproducing the blow-up visible in the paper's Horner rows.
    if not result.failed:
        assert result.relative_error > 0
