"""Table 5: conditional benchmarks — Λnum inference on programs with branches.

Run with::

    pytest benchmarks/bench_table5.py --benchmark-only
"""

from fractions import Fraction

import pytest

from repro.benchsuite.conditionals import table5_benchmarks

EPS64 = Fraction(1, 2**52)

#: Expected grades (multiples of eps).  HammarlingDistance is a reconstruction
#: that lands one rounding below the paper's 5*eps; see EXPERIMENTS.md.
EXPECTED_GRADE_IN_EPS = {
    "PythagoreanSum": 4,
    "HammarlingDistance": 4,
    "squareRoot3": 2,
    "squareRoot3Invalid": 2,
}

_BY_NAME = {bench.name: bench for bench in table5_benchmarks()}


@pytest.mark.parametrize("name", list(_BY_NAME), ids=list(_BY_NAME))
def test_conditional_inference(benchmark, name):
    bench = _BY_NAME[name]
    analysis = benchmark(bench.analyze_lnum)
    assert analysis.rp_bound == EXPECTED_GRADE_IN_EPS[name] * EPS64
