"""Path setup shared by the pytest-benchmark harnesses."""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path and os.path.isdir(_SRC):
    sys.path.insert(0, _SRC)
