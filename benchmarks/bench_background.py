"""Regenerate the background tables (Tables 1 and 2 of the paper).

These are not performance claims; the benchmarks time the table construction
and assert that the regenerated parameters match the IEEE 754 standard.
"""

from fractions import Fraction

from repro.benchsuite.runner import table1_rows, table2_rows


def test_table1_formats(benchmark):
    rows = benchmark(table1_rows)
    by_name = {row["format"]: row for row in rows}
    assert by_name["binary32"]["p"] == 24
    assert by_name["binary64"]["p"] == 53
    assert by_name["binary128"]["p"] == 113
    assert all(row["emin"] == 1 - row["emax"] for row in rows)


def test_table2_rounding_modes(benchmark):
    rows = benchmark(table2_rows)
    modes = {row["mode"]: row["unit_roundoff"] for row in rows}
    assert modes["RU"] == float(Fraction(1, 2**52))
    assert modes["RN"] == float(Fraction(1, 2**53))
    assert set(modes) == {"RU", "RD", "RZ", "RN"}
