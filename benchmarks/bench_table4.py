"""Table 4: large benchmarks — Λnum inference time on programs with 100–520k ops.

Each benchmark times a single inference run (``pedantic`` with one round for
the larger programs, since an inference on SerialSum1024 already takes
seconds in pure Python) and asserts the computed bound equals the value from
Table 4 of the paper.

Run with::

    pytest benchmarks/bench_table4.py --benchmark-only
"""

from fractions import Fraction

import pytest

from repro.benchsuite.large import (
    horner_benchmark,
    matrix_multiply_benchmark,
    poly50_benchmark,
    serial_sum_benchmark,
)

EPS64 = Fraction(1, 2**52)


def _run_once(benchmark, bench):
    return benchmark.pedantic(bench.analyze_lnum, rounds=1, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("degree", [50, 75, 100], ids=lambda d: f"Horner{d}")
def test_horner(benchmark, degree):
    analysis = _run_once(benchmark, horner_benchmark(degree))
    assert analysis.rp_bound == degree * EPS64


@pytest.mark.parametrize(
    "dimension, expected_eps",
    [(4, 7), (16, 31), (64, 127)],
    ids=lambda value: f"{value}",
)
def test_matrix_multiply_element(benchmark, dimension, expected_eps):
    """One element of the n-by-n product; the paper reports the max element-wise bound."""
    analysis = _run_once(benchmark, matrix_multiply_benchmark(dimension))
    assert analysis.rp_bound == expected_eps * EPS64


def test_serial_sum_1024(benchmark):
    analysis = _run_once(benchmark, serial_sum_benchmark(1024))
    assert analysis.rp_bound == 1023 * EPS64


def test_poly50(benchmark):
    analysis = _run_once(benchmark, poly50_benchmark(50))
    assert float(analysis.relative_error_bound) == pytest.approx(2.94e-13, rel=1e-2)
