"""Ablation benchmarks for the design choices discussed in the paper.

* **Scaling** (Section 6.2.5, "analysis via type checking is fast"): inference
  time versus program size on a Horner-degree sweep — compositional inference
  is (near-)linear, no global optimisation.
* **FMA versus MA** (Fig. 8): fusing the multiply-add halves the error grade.
* **Serial versus pairwise summation**: the graded monad accumulates rounding
  errors additively, so both orders get the same grade (as in Table 3's
  sums4 rows), even though the textbook pairwise bound is logarithmic.
* **Rounding-mode instantiation**: switching the ``rnd`` grade from the
  directed unit roundoff to the round-to-nearest unit roundoff halves every
  bound without touching the programs.
* **Ideal/FP evaluation** (Lemma 4.19): running the two refined semantics and
  checking the certified bound on a concrete input.

Run with::

    pytest benchmarks/bench_ablation.py --benchmark-only
"""

from fractions import Fraction

import pytest

from repro.analysis import analyze_term, check_error_soundness
from repro.benchsuite.large import (
    horner_fma_expression,
    pairwise_sum_expression,
    serial_sum_expression,
)
from repro.core import InferenceConfig
from repro.core.grades import Grade
from repro.frontend import expr as E
from repro.frontend.compiler import compile_expression

EPS64 = Fraction(1, 2**52)


@pytest.mark.parametrize("degree", [10, 25, 50, 100, 200], ids=lambda d: f"degree{d}")
def test_scaling_with_program_size(benchmark, degree):
    """Inference time as a function of the number of operations."""
    program = compile_expression(horner_fma_expression(degree))

    def run():
        return analyze_term(program.term, program.skeleton, name=f"Horner{degree}")

    analysis = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert analysis.rp_bound == degree * EPS64


@pytest.mark.parametrize("fused", [True, False], ids=["FMA", "MA"])
def test_fused_versus_unfused_multiply_add(benchmark, fused):
    a, x, b = E.Var("a"), E.Var("x"), E.Var("b")
    expression = E.Fma(a, x, b) if fused else E.Add(E.Mul(a, x), b)
    program = compile_expression(expression)
    analysis = benchmark(lambda: analyze_term(program.term, program.skeleton))
    expected = EPS64 if fused else 2 * EPS64
    assert analysis.rp_bound == expected


@pytest.mark.parametrize("shape", ["serial", "pairwise"])
def test_summation_order_does_not_change_the_grade(benchmark, shape):
    expression = serial_sum_expression(32) if shape == "serial" else pairwise_sum_expression(32)
    program = compile_expression(expression)
    analysis = benchmark(lambda: analyze_term(program.term, program.skeleton))
    assert analysis.rp_bound == 31 * EPS64


@pytest.mark.parametrize(
    "label, unit",
    [
        ("directed", Fraction(1, 2**52)),
        ("nearest", Fraction(1, 2**53)),
        ("binary32_directed", Fraction(1, 2**23)),
    ],
)
def test_rounding_mode_instantiation(benchmark, label, unit):
    program = compile_expression(horner_fma_expression(10))
    config = InferenceConfig().with_rnd_grade(Grade.constant(unit))

    def run():
        return analyze_term(program.term, program.skeleton, config)

    analysis = benchmark(run)
    assert analysis.rp_bound == 10 * unit


def test_ideal_and_fp_evaluation_with_soundness_check(benchmark):
    """Times the full Corollary 4.20 check (two evaluations + exact RP distance)."""
    program = compile_expression(horner_fma_expression(10))
    inputs = {name: Fraction(3, 7) for name in program.skeleton}

    def run():
        return check_error_soundness(program.term, program.skeleton, inputs)

    report = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert report.holds
